"""Structured failure reporting for degraded sweeps.

When cells of a sweep exhaust their retries, the executor does not
raise -- it returns every successful cell plus a :class:`FailureReport`
describing exactly what was lost, so callers can aggregate partial
results and operators can decide whether to resume or investigate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class TaskFailure:
    """One task whose attempts were exhausted."""

    key: Tuple
    attempts: int
    kind: str      # "error" | "timeout" | "crash"
    error: str     # last error message / traceback tail

    def describe(self) -> str:
        """One-line human-readable description."""
        return (f"{'/'.join(str(part) for part in self.key)}: "
                f"{self.kind} after {self.attempts} attempt(s) -- "
                f"{self.error}")


@dataclass
class FailureReport:
    """All failed tasks of one sweep, in deterministic task order."""

    failures: List[TaskFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing failed."""
        return not self.failures

    def keys(self) -> List[Tuple]:
        """Keys of the failed tasks."""
        return [failure.key for failure in self.failures]

    def summary(self) -> str:
        """Multi-line summary suitable for logs/stderr."""
        if self.ok:
            return "all tasks completed"
        lines = [f"{len(self.failures)} task(s) failed:"]
        lines.extend("  " + failure.describe() for failure in self.failures)
        return "\n".join(lines)

    def __bool__(self) -> bool:
        return bool(self.failures)

    def __len__(self) -> int:
        return len(self.failures)

    def __iter__(self) -> Iterator[TaskFailure]:
        return iter(self.failures)


__all__ = ["TaskFailure", "FailureReport"]
