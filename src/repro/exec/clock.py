"""Clock abstraction shared by the executor and the service layer.

Deterministic failure-path tests must never sleep: a suite that waits
out real backoffs, TTLs or outage windows is slow at best and flaky at
worst.  Both fault-tolerant layers in this repo -- the sweep executor
(:mod:`repro.exec.executor`) and the cache service
(:mod:`repro.service`) -- therefore run against a :class:`Clock`
interface instead of the ``time`` module:

* :class:`SystemClock` is the production implementation
  (``time.monotonic`` / ``time.sleep``).
* :class:`VirtualClock` is a manually-advanced clock: ``sleep`` simply
  moves time forward, so retries back off, TTLs expire, circuit
  breakers reset and outage windows open and close instantly and
  deterministically.

:class:`VirtualClock` is thread-safe so multi-threaded service tests
can share one timeline.  Concurrent sleepers form an ordered waiter
queue: virtual time advances to the *earliest* pending deadline and
waiters wake one at a time in ``(deadline, registration)`` order, so a
multi-shard outage window -- several shards sleeping until their own
fault boundaries -- unfolds in the same order on every run.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Monotonic time source with an injectable notion of sleeping."""

    @abstractmethod
    def now(self) -> float:
        """Current monotonic time in seconds."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Block (or pretend to block) for *seconds*."""

    def sleep_until(self, deadline: float) -> None:
        """Block until the clock reads at least *deadline*.

        The drift-free way to pace periodic work: computing the next
        absolute deadline and sleeping *until* it (rather than sleeping
        a relative tick) keeps a long run's schedule exact even when
        each iteration takes its own time.  A deadline in the past
        returns immediately.
        """
        remaining = deadline - self.now()
        if remaining > 0:
            self.sleep(remaining)


class SystemClock(Clock):
    """The real wall clock: ``time.monotonic`` and ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        if seconds:
            time.sleep(seconds)


class VirtualClock(Clock):
    """A deterministic clock that only moves when told to.

    ``sleep(s)`` advances time by *s* instead of blocking, so code
    written against :class:`Clock` runs its timeout/backoff/TTL logic
    unchanged while tests complete in microseconds.  ``advance`` is the
    test-side control for modelling elapsed time between requests.

    **Concurrent waiters wake deterministically.**  When several
    threads sleep at once, each registers a ``(deadline, seq)`` waiter
    (``seq`` is the registration order).  The earliest pending waiter
    is the only one allowed to move time forward -- it advances the
    clock exactly to its own deadline -- and waiters whose deadlines
    have passed return strictly one at a time in ``(deadline, seq)``
    order.  An external :meth:`advance` that jumps past several
    deadlines therefore releases those sleepers earliest-deadline
    first, ties broken by registration order, on every run.
    """

    #: real-time poll interval while parked; a safety valve only --
    #: every wake-relevant event also notifies the condition.
    _WAIT_SLICE = 0.05

    def __init__(self, start: float = 0.0, manual: bool = False) -> None:
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        self._now = float(start)
        self._manual = bool(manual)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._waiters: set = set()   # pending (deadline, seq) pairs
        self._seq = 0

    @property
    def manual(self) -> bool:
        """Whether sleepers park until an external :meth:`advance`."""
        return self._manual

    def now(self) -> float:
        with self._lock:
            return self._now

    def pending_waiters(self) -> int:
        """How many threads are currently parked in a virtual sleep."""
        with self._lock:
            return len(self._waiters)

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        with self._cond:
            self._sleep_until_locked(self._now + seconds)

    def sleep_until(self, deadline: float) -> None:
        """Advance-or-wait until the clock reads at least *deadline*."""
        with self._cond:
            self._sleep_until_locked(float(deadline))

    def advance(self, seconds: float) -> float:
        """Move time forward by *seconds*; returns the new time.

        Before returning, every parked sleeper whose deadline was
        passed is released -- serially, in ``(deadline, registration)``
        order -- so an ``advance`` over a multi-shard outage boundary
        is a synchronisation point: when it returns, all the shards
        that were due have taken their turn.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        with self._cond:
            self._now += seconds
            target = self._now
            self._cond.notify_all()
            # Drain satisfied waiters before handing time back.
            while any(deadline <= target
                      for deadline, _ in self._waiters):
                self._cond.wait(self._WAIT_SLICE)
            return target

    # ------------------------------------------------------------------
    def _sleep_until_locked(self, deadline: float) -> None:
        """The waiter protocol; caller holds ``self._cond``.

        A waiter may exit only when (a) time has reached its deadline
        and (b) it is the minimal pending waiter -- which serialises
        wake-ups into (deadline, registration) order.  In the default
        (auto) mode the minimal waiter whose deadline has *not* been
        reached self-advances the clock to it, preserving the classic
        "sleep moves time" semantics: a lone sleeper never blocks and
        a group always progresses, waking earliest-deadline first.  In
        ``manual`` mode sleepers park until an external
        :meth:`advance` passes their deadline, which is what a
        coordinated multi-shard timeline needs.
        """
        if deadline <= self._now:
            return
        me = (deadline, self._seq)
        self._seq += 1
        self._waiters.add(me)
        try:
            while True:
                if me == min(self._waiters):
                    if self._now >= deadline:
                        return
                    if not self._manual:
                        self._now = deadline
                        return
                self._cond.wait(self._WAIT_SLICE)
        finally:
            self._waiters.discard(me)
            self._cond.notify_all()


__all__ = ["Clock", "SystemClock", "VirtualClock"]
