"""Clock abstraction shared by the executor and the service layer.

Deterministic failure-path tests must never sleep: a suite that waits
out real backoffs, TTLs or outage windows is slow at best and flaky at
worst.  Both fault-tolerant layers in this repo -- the sweep executor
(:mod:`repro.exec.executor`) and the cache service
(:mod:`repro.service`) -- therefore run against a :class:`Clock`
interface instead of the ``time`` module:

* :class:`SystemClock` is the production implementation
  (``time.monotonic`` / ``time.sleep``).
* :class:`VirtualClock` is a manually-advanced clock: ``sleep`` simply
  moves time forward, so retries back off, TTLs expire, circuit
  breakers reset and outage windows open and close instantly and
  deterministically.

:class:`VirtualClock` is thread-safe so multi-threaded service tests
can share one timeline.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Monotonic time source with an injectable notion of sleeping."""

    @abstractmethod
    def now(self) -> float:
        """Current monotonic time in seconds."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Block (or pretend to block) for *seconds*."""


class SystemClock(Clock):
    """The real wall clock: ``time.monotonic`` and ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        if seconds:
            time.sleep(seconds)


class VirtualClock(Clock):
    """A deterministic clock that only moves when told to.

    ``sleep(s)`` advances time by *s* instead of blocking, so code
    written against :class:`Clock` runs its timeout/backoff/TTL logic
    unchanged while tests complete in microseconds.  ``advance`` is the
    test-side control for modelling elapsed time between requests.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move time forward by *seconds*; returns the new time."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        with self._lock:
            self._now += seconds
            return self._now


__all__ = ["Clock", "SystemClock", "VirtualClock"]
