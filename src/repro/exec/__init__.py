"""repro.exec -- fault-tolerant execution for long-running sweeps.

The paper's evaluation is a 5307-trace simulation matrix; ours replays
millions of requests per (policy, trace, size) cell at the full tier.
This package makes those sweeps survivable:

* :mod:`repro.exec.executor` -- per-task crash isolation, retries with
  exponential backoff, per-task timeouts, graceful degradation.
* :mod:`repro.exec.journal` -- a JSONL checkpoint journal under
  ``runs/<run-id>/`` enabling lossless resume.
* :mod:`repro.exec.retry` -- the :class:`RetryPolicy` knobs.
* :mod:`repro.exec.faults` -- deterministic fault injection for tests.
* :mod:`repro.exec.report` -- structured :class:`FailureReport`.
* :mod:`repro.exec.clock` -- the :class:`Clock` abstraction
  (:class:`SystemClock` / :class:`VirtualClock`) shared with
  :mod:`repro.service` so timeout, backoff and TTL logic is testable
  without real sleeps.
"""

from repro.exec.clock import Clock, SystemClock, VirtualClock
from repro.exec.executor import ExecutionOutcome, Task, run_tasks
from repro.exec.faults import (
    CRASH,
    ERROR,
    FaultPlan,
    InjectedFault,
    SweepInterrupted,
    TaskTimeout,
    WorkerCrash,
)
from repro.exec.journal import Journal, JournalState, new_run_id, runs_root
from repro.exec.options import ExecOptions
from repro.exec.report import FailureReport, TaskFailure
from repro.exec.retry import NO_RETRY, RetryPolicy

__all__ = [
    "CRASH",
    "Clock",
    "ERROR",
    "ExecOptions",
    "ExecutionOutcome",
    "FailureReport",
    "FaultPlan",
    "InjectedFault",
    "Journal",
    "JournalState",
    "NO_RETRY",
    "RetryPolicy",
    "SweepInterrupted",
    "SystemClock",
    "Task",
    "TaskFailure",
    "TaskTimeout",
    "VirtualClock",
    "WorkerCrash",
    "new_run_id",
    "run_tasks",
    "runs_root",
]
