"""Retry policy for fault-tolerant task execution.

A :class:`RetryPolicy` bundles the three knobs every resilient runner
needs: how many times to attempt a task, how long to back off between
attempts (exponential, starting from ``base_delay``), and how long a
single attempt may run before it is killed and counted as a failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How a failing task is retried.

    * ``max_attempts`` -- total attempts per task (1 = no retry).
    * ``base_delay`` -- seconds before the first retry; each further
      retry doubles it (``base_delay * 2 ** (attempt - 1)``).
    * ``timeout`` -- per-attempt wall-clock budget in seconds, or
      ``None`` for unbounded.  In parallel mode an over-budget worker
      process is terminated; injected virtual delays (see
      :class:`~repro.exec.faults.FaultPlan`) are checked against the
      same budget so tests can exercise the timeout path without
      sleeping.
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(
                f"base_delay must be >= 0, got {self.base_delay}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                f"timeout must be > 0 or None, got {self.timeout}")

    def backoff(self, attempt: int) -> float:
        """Delay in seconds before the retry that follows *attempt*."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.base_delay * (2 ** (attempt - 1))


#: Fail fast: one attempt, no backoff, no timeout.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, timeout=None)

__all__ = ["RetryPolicy", "NO_RETRY"]
