"""Fault-tolerant task executor: isolation, retries, checkpoints.

:func:`run_tasks` executes a list of keyed tasks and returns every
result it managed to produce plus a
:class:`~repro.exec.report.FailureReport` for the rest -- it does not
raise on task failure (graceful degradation).  Guarantees:

* **Crash isolation** (``workers > 1``): every attempt runs in its own
  worker process with a dedicated result pipe, so an OOM-killed or
  segfaulting worker takes down exactly one attempt of one task -- the
  coordinator observes the dead process, counts the attempt, and moves
  on.  This is unlike ``ProcessPoolExecutor``, where one abrupt worker
  death poisons the whole pool (``BrokenProcessPool``) and every
  in-flight future with it.
* **Retry with exponential backoff**: failed attempts are re-queued
  until :class:`~repro.exec.retry.RetryPolicy.max_attempts` is reached;
  other tasks keep executing while a retry waits out its backoff.
* **Per-task timeout**: an attempt over ``RetryPolicy.timeout`` has its
  worker process terminated and is counted as a failed attempt.
* **Checkpointing**: with a :class:`~repro.exec.journal.Journal`, every
  completed task is flushed to ``runs/<run-id>/journal.jsonl`` before
  the next one starts, so an interrupted run resumes losslessly.
* **Deterministic fault injection**: a
  :class:`~repro.exec.faults.FaultPlan` can fail/crash/delay specific
  (task, attempt) pairs, which is how the test-suite proves all of the
  above without real crashes or sleeps.

With ``workers <= 1`` tasks run in-process (no isolation, but identical
retry/journal/fault semantics and deterministic ordering); wall-clock
timeout preemption requires ``workers > 1``, while *virtual* delays
from a fault plan are enforced in both modes.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.clock import VirtualClock
from repro.exec.faults import (
    CRASH,
    ERROR,
    FaultPlan,
    InjectedFault,
    SweepInterrupted,
    TaskTimeout,
    WorkerCrash,
)
from repro.exec.journal import Journal
from repro.exec.report import FailureReport, TaskFailure
from repro.exec.retry import NO_RETRY, RetryPolicy
from repro.obs.metrics import DEFAULT_DURATION_BUCKETS, MetricsRegistry
from repro.obs.span import SpanTracer


@dataclass(frozen=True)
class Task:
    """One unit of work: a JSON-serializable identity plus its input."""

    key: Tuple
    payload: Any


@dataclass
class ExecutionOutcome:
    """Everything :func:`run_tasks` produced."""

    results: Dict[Tuple, Any] = field(default_factory=dict)
    failures: FailureReport = field(default_factory=FailureReport)
    executed: int = 0   # tasks run (not restored) in this call
    resumed: int = 0    # tasks restored from a prior checkpoint


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _apply_faults(key: Tuple, attempt: int, plan: Optional[FaultPlan],
                  in_process: bool) -> float:
    """Honour the fault plan; returns the attempt's virtual duration."""
    if plan is None:
        return 0.0
    kind = plan.fault_for(key, attempt)
    if kind == CRASH:
        if in_process:
            raise WorkerCrash(
                f"injected worker crash for {key} (attempt {attempt})")
        os._exit(86)  # abrupt death: nothing flushed, no exception raised
    elif kind == ERROR:
        raise InjectedFault(
            f"injected fault for {key} (attempt {attempt})")
    return plan.delay_for(key, attempt)


def _attempt_main(fn: Callable[[Any], Any], payload: Any, key: Tuple,
                  attempt: int, plan: Optional[FaultPlan], conn) -> None:
    """Worker-process entry point: run one attempt, send one message."""
    try:
        virtual = _apply_faults(key, attempt, plan, in_process=False)
        result = fn(payload)
        conn.send(("ok", virtual, result))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc(limit=8)))
        except BaseException:
            os._exit(86)  # message unsendable: surface as a crash
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------

def _failure_kind(exc: BaseException) -> str:
    if isinstance(exc, WorkerCrash):
        return "crash"
    if isinstance(exc, TaskTimeout):
        return "timeout"
    return "error"


class _Run:
    """Shared bookkeeping for one :func:`run_tasks` invocation."""

    def __init__(self, retry: RetryPolicy, journal: Optional[Journal],
                 plan: Optional[FaultPlan],
                 encode: Callable[[Any], Any],
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[SpanTracer] = None):
        self.retry = retry
        self.journal = journal
        self.plan = plan
        self.encode = encode
        self.registry = registry
        self.tracer = tracer
        self.results: Dict[Tuple, Any] = {}
        self.failed: Dict[Tuple, TaskFailure] = {}
        self.completions = 0
        #: task key -> (pre-allocated cell span id, cell start time);
        #: the id exists from the first attempt so attempt spans can
        #: link to the cell before the cell span itself is recorded.
        self._cells: Dict[Tuple, Tuple[int, float]] = {}
        if registry is not None:
            self._obs_attempts = registry.counter(
                "exec_attempts_total", "Task attempts started")
            self._obs_retries = registry.counter(
                "exec_retries_total", "Attempts beyond a task's first")
            self._obs_task_seconds = registry.histogram(
                "exec_task_seconds", "Wall time of successful attempts",
                DEFAULT_DURATION_BUCKETS)

    # -- span recording (all no-ops without a tracer) ------------------
    @staticmethod
    def _span_key(task: Task) -> list:
        return [k if isinstance(k, (str, int, float, bool)) else str(k)
                for k in task.key]

    def trace_now(self) -> float:
        """The tracer's clock (0.0 without one)."""
        return self.tracer.now() if self.tracer is not None else 0.0

    def trace_start(self, task: Task) -> None:
        """Open (logically) the task's cell span at its first attempt."""
        if self.tracer is not None and task.key not in self._cells:
            self._cells[task.key] = (self.tracer.allocate_id(),
                                     self.tracer.now())

    def trace_attempt(self, task: Task, attempt: int, start: float,
                      error: Optional[str] = None) -> None:
        """Record one finished attempt under the task's cell span."""
        if self.tracer is None:
            return
        cell = self._cells.get(task.key)
        args = {"key": self._span_key(task), "attempt": attempt}
        if error is not None:
            args["error"] = error
        self.tracer.add_span("attempt", start, self.tracer.now(),
                             cat="attempt",
                             parent_id=cell[0] if cell else None, **args)

    def _trace_cell_done(self, task: Task, outcome: str) -> None:
        if self.tracer is None:
            return
        cell = self._cells.pop(task.key, None)
        if cell is None:
            return
        self.tracer.add_span("cell", cell[1], self.tracer.now(),
                             cat="cell", span_id=cell[0],
                             key=self._span_key(task), path="exec",
                             outcome=outcome)

    def note_attempt(self, attempt: int) -> None:
        """Account one attempt being started."""
        if self.registry is not None:
            self._obs_attempts.inc()
            if attempt > 1:
                self._obs_retries.inc()

    def note_duration(self, seconds: float) -> None:
        """Account a successful attempt's wall time."""
        if self.registry is not None:
            self._obs_task_seconds.observe(seconds)

    def succeed(self, task: Task, result: Any) -> None:
        self._trace_cell_done(task, "ok")
        self.results[task.key] = result
        if self.journal is not None:
            self.journal.record_result(task.key, self.encode(result))
        self.completions += 1
        if (self.plan is not None and self.plan.abort_after is not None
                and self.completions >= self.plan.abort_after):
            raise SweepInterrupted(
                f"injected interrupt after {self.completions} completions")

    def exhaust(self, task: Task, attempt: int, kind: str,
                error: str) -> None:
        self._trace_cell_done(task, kind)
        failure = TaskFailure(key=task.key, attempts=attempt, kind=kind,
                              error=error.strip().splitlines()[-1]
                              if error.strip() else kind)
        self.failed[task.key] = failure
        if self.journal is not None:
            self.journal.record_failure(task.key, attempt, kind,
                                        failure.error)
        if self.registry is not None:
            self.registry.counter(
                "exec_failures_total", "Tasks whose retries were exhausted",
                kind=kind).inc()

    def over_virtual_budget(self, virtual: float) -> bool:
        return (self.retry.timeout is not None
                and virtual > self.retry.timeout)


def _run_serial(tasks: Sequence[Task], fn: Callable[[Any], Any],
                run: _Run, sleep: Callable[[float], None]) -> None:
    # Injected delays advance a shared virtual clock (the same utility
    # the service layer uses), so per-attempt budgets are enforced
    # deterministically without any real waiting.
    vclock = VirtualClock()
    for task in tasks:
        run.trace_start(task)
        attempt = 1
        while True:
            span_started = run.trace_now()
            try:
                run.note_attempt(attempt)
                started = vclock.now()
                wall_started = time.perf_counter()
                vclock.advance(_apply_faults(task.key, attempt, run.plan,
                                             in_process=True))
                result = fn(task.payload)
                wall_elapsed = time.perf_counter() - wall_started
                virtual = vclock.now() - started
                if run.over_virtual_budget(virtual):
                    raise TaskTimeout(
                        f"{task.key} took {virtual:.3f}s (virtual) with a "
                        f"{run.retry.timeout}s budget")
            except (KeyboardInterrupt, SystemExit, SweepInterrupted):
                raise
            except Exception as exc:
                run.trace_attempt(task, attempt, span_started,
                                  error=type(exc).__name__)
                if attempt >= run.retry.max_attempts:
                    run.exhaust(task, attempt, _failure_kind(exc),
                                f"{type(exc).__name__}: {exc}")
                    break
                sleep(run.retry.backoff(attempt))
                attempt += 1
            else:
                run.trace_attempt(task, attempt, span_started)
                run.note_duration(wall_elapsed)
                run.succeed(task, result)
                break


@dataclass
class _Inflight:
    task: Task
    attempt: int
    proc: multiprocessing.process.BaseProcess
    conn: Any
    deadline: Optional[float]
    started: float = 0.0   # monotonic launch time, for the obs histogram
    span_started: float = 0.0   # tracer-clock launch time


@dataclass
class _Pending:
    task: Task
    attempt: int
    ready_at: float


def _stop_process(entry: _Inflight) -> None:
    if entry.proc.is_alive():
        entry.proc.terminate()
        entry.proc.join(timeout=2.0)
        if entry.proc.is_alive():
            entry.proc.kill()
            entry.proc.join(timeout=2.0)
    entry.conn.close()


def _run_parallel(tasks: Sequence[Task], fn: Callable[[Any], Any],
                  run: _Run, workers: int) -> None:
    ctx = multiprocessing.get_context()
    pending: List[_Pending] = [_Pending(t, 1, 0.0) for t in tasks]
    inflight: Dict[Tuple, _Inflight] = {}

    def launch(entry: _Pending) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_attempt_main,
            args=(fn, entry.task.payload, entry.task.key, entry.attempt,
                  run.plan, child_conn),
            daemon=True)
        proc.start()
        child_conn.close()
        deadline = (time.monotonic() + run.retry.timeout
                    if run.retry.timeout is not None else None)
        run.note_attempt(entry.attempt)
        run.trace_start(entry.task)
        inflight[entry.task.key] = _Inflight(
            entry.task, entry.attempt, proc, parent_conn, deadline,
            started=time.monotonic(), span_started=run.trace_now())

    def attempt_failed(entry: _Inflight, exc: BaseException,
                       error: str) -> None:
        run.trace_attempt(entry.task, entry.attempt, entry.span_started,
                          error=type(exc).__name__)
        if entry.attempt >= run.retry.max_attempts:
            run.exhaust(entry.task, entry.attempt, _failure_kind(exc),
                        error)
        else:
            pending.append(_Pending(
                entry.task, entry.attempt + 1,
                time.monotonic() + run.retry.backoff(entry.attempt)))

    def settle(entry: _Inflight) -> None:
        """Entry's pipe has a message (or its process is dead): resolve."""
        message = None
        if entry.conn.poll():
            try:
                message = entry.conn.recv()
            except (EOFError, OSError):
                message = None
        entry.proc.join(timeout=5.0)
        entry.conn.close()
        del inflight[entry.task.key]
        if message is None:
            exc = WorkerCrash(
                f"worker for {entry.task.key} died without reporting "
                f"(exit code {entry.proc.exitcode})")
            attempt_failed(entry, exc, str(exc))
        elif message[0] == "ok":
            _, virtual, result = message
            if run.over_virtual_budget(virtual):
                exc = TaskTimeout(
                    f"{entry.task.key} took {virtual:.3f}s (virtual) with "
                    f"a {run.retry.timeout}s budget")
                attempt_failed(entry, exc, str(exc))
            else:
                run.trace_attempt(entry.task, entry.attempt,
                                  entry.span_started)
                run.note_duration(time.monotonic() - entry.started)
                run.succeed(entry.task, result)
        else:
            attempt_failed(entry, InjectedFault("worker error"),
                           message[1])

    def expire(entry: _Inflight) -> None:
        _stop_process(entry)
        del inflight[entry.task.key]
        exc = TaskTimeout(
            f"{entry.task.key} exceeded the {run.retry.timeout}s "
            f"per-task timeout (attempt {entry.attempt})")
        attempt_failed(entry, exc, str(exc))

    try:
        while pending or inflight:
            now = time.monotonic()
            # Launch everything that is ready and fits in the worker cap.
            ready = [p for p in pending if p.ready_at <= now]
            for entry in ready:
                if len(inflight) >= workers:
                    break
                pending.remove(entry)
                launch(entry)

            if not inflight:
                # Every remaining task is waiting out a retry backoff.
                wake = min(p.ready_at for p in pending)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue

            # Sleep until a message, a worker death, a timeout deadline,
            # or the next backoff expiry -- whichever comes first.
            waitables = []
            for entry in inflight.values():
                waitables.append(entry.conn)
                waitables.append(entry.proc.sentinel)
            timeouts = [entry.deadline - now
                        for entry in inflight.values()
                        if entry.deadline is not None]
            if len(inflight) < workers:
                timeouts.extend(p.ready_at - now for p in pending)
            wait_for = max(0.0, min(timeouts)) if timeouts else None
            mp_connection.wait(waitables, timeout=wait_for)

            now = time.monotonic()
            for entry in list(inflight.values()):
                if entry.conn.poll() or not entry.proc.is_alive():
                    settle(entry)
                elif entry.deadline is not None and now > entry.deadline:
                    expire(entry)
    finally:
        for entry in list(inflight.values()):
            _stop_process(entry)
        inflight.clear()


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def run_tasks(
    tasks: Sequence[Task],
    fn: Callable[[Any], Any],
    *,
    workers: int = 1,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[Journal] = None,
    completed: Optional[Dict[Tuple, Any]] = None,
    fault_plan: Optional[FaultPlan] = None,
    encode: Callable[[Any], Any] = lambda result: result,
    sleep: Callable[[float], None] = time.sleep,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
) -> ExecutionOutcome:
    """Execute *tasks* with fault isolation, retries and checkpointing.

    ``fn(payload)`` must be a module-level callable (it is shipped to
    worker processes when ``workers > 1``).  ``completed`` maps task
    keys to already-known results (from a resumed journal); those tasks
    are skipped.  ``encode`` converts a result to the JSON-serializable
    payload the journal stores.  ``sleep`` is injectable so tests can
    observe backoff without waiting (serial mode only).  ``registry``
    opts into observability: attempt/retry counters, per-kind failure
    counters, and a wall-time histogram of successful attempts.
    ``tracer`` opts into span tracing: each task gets a ``cell`` span
    covering first launch to resolution with one child ``attempt`` span
    per attempt (failed attempts carry an ``error`` arg) -- in parallel
    mode the coordinator records spans from launch/settle observations,
    so worker processes need no tracer plumbing.

    Task failures never raise; they are collected into the outcome's
    :class:`FailureReport`.  ``KeyboardInterrupt`` and
    :class:`SweepInterrupted` do propagate -- with every completion up
    to that point already flushed to the journal.
    """
    keys = [task.key for task in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError("task keys must be unique")
    retry = retry or NO_RETRY
    completed = completed or {}

    run = _Run(retry, journal, fault_plan, encode, registry, tracer)
    resumed = 0
    for task in tasks:
        if task.key in completed:
            run.results[task.key] = completed[task.key]
            resumed += 1
    todo = [task for task in tasks if task.key not in completed]

    if workers <= 1 or len(todo) <= 1:
        _run_serial(todo, fn, run, sleep)
    else:
        _run_parallel(todo, fn, run, workers)

    ordered = [run.failed[key] for key in keys if key in run.failed]
    return ExecutionOutcome(
        results=run.results,
        failures=FailureReport(ordered),
        executed=run.completions + len(run.failed),
        resumed=resumed,
    )


__all__ = ["Task", "ExecutionOutcome", "run_tasks"]
