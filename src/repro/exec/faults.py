"""Deterministic fault injection for the execution layer.

Testing a fault-tolerant runner with real crashes and real clocks makes
for flaky suites.  A :class:`FaultPlan` instead *declares* the faults a
run should experience -- "cell X raises on attempt 1", "cell Y crashes
its worker process", "cell Z takes 30 virtual seconds" -- and the
executor consults it at well-defined points, so every failure path can
be exercised deterministically and without sleeping.

Fault kinds:

* ``ERROR`` -- the task function raises :class:`InjectedFault`.
* ``CRASH`` -- the worker process dies abruptly (``os._exit``); in
  in-process (serial) mode a :class:`WorkerCrash` is raised instead.
* virtual *delays* -- the attempt reports an elapsed time without
  actually sleeping, letting per-task timeouts trigger deterministically.
* ``abort_after`` -- the coordinator raises :class:`SweepInterrupted`
  after N completed tasks, simulating a mid-sweep kill for
  checkpoint/resume tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

ERROR = "error"
CRASH = "crash"
_KINDS = (ERROR, CRASH)


class InjectedFault(RuntimeError):
    """Raised inside a worker when the plan injects an ``ERROR`` fault."""


class WorkerCrash(RuntimeError):
    """In-process stand-in for an abrupt worker-process death."""


class TaskTimeout(RuntimeError):
    """An attempt exceeded the retry policy's per-task timeout."""


class SweepInterrupted(RuntimeError):
    """The coordinator was interrupted mid-sweep (injected kill)."""


@dataclass
class FaultPlan:
    """A deterministic schedule of faults, keyed by task key + attempt.

    Attempt numbers are 1-based; registering with ``attempt=None``
    makes the fault fire on *every* attempt.  Instances are picklable
    so they travel to worker processes.
    """

    #: (key, attempt-or-None) -> fault kind
    failures: Dict[Tuple[object, Optional[int]], str] = field(
        default_factory=dict)
    #: (key, attempt-or-None) -> virtual seconds the attempt "takes"
    delays: Dict[Tuple[object, Optional[int]], float] = field(
        default_factory=dict)
    #: raise SweepInterrupted after this many completions (None = never)
    abort_after: Optional[int] = None

    # -- builders ------------------------------------------------------
    def fail(self, key, attempt: Optional[int] = None,
             kind: str = ERROR) -> "FaultPlan":
        """Make *key* fail on *attempt* (``None`` = every attempt)."""
        if kind not in _KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; use one of "
                             f"{_KINDS}")
        self.failures[(key, attempt)] = kind
        return self

    def delay(self, key, seconds: float,
              attempt: Optional[int] = None) -> "FaultPlan":
        """Give *key*'s attempt a virtual duration of *seconds*."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self.delays[(key, attempt)] = seconds
        return self

    def abort_after_completions(self, count: int) -> "FaultPlan":
        """Interrupt the coordinator after *count* completed tasks."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.abort_after = count
        return self

    # -- queries -------------------------------------------------------
    def fault_for(self, key, attempt: int) -> Optional[str]:
        """The fault kind scheduled for (key, attempt), if any."""
        kind = self.failures.get((key, attempt))
        if kind is None:
            kind = self.failures.get((key, None))
        return kind

    def delay_for(self, key, attempt: int) -> float:
        """The virtual duration scheduled for (key, attempt)."""
        seconds = self.delays.get((key, attempt))
        if seconds is None:
            seconds = self.delays.get((key, None), 0.0)
        return seconds


__all__ = [
    "ERROR",
    "CRASH",
    "FaultPlan",
    "InjectedFault",
    "WorkerCrash",
    "TaskTimeout",
    "SweepInterrupted",
]
