"""Closed-loop multi-threaded load harness for the cache service.

``run_load`` replays a key sequence through a
:class:`~repro.service.service.CacheService` from ``threads`` worker
threads (closed loop: each thread issues its next request only after
the previous one resolved), and returns a :class:`LoadReport` with
per-outcome counts, latency percentiles, throughput, and the breaker's
state transitions.

Keys are dealt round-robin across threads, so with ``threads=1`` the
replay is exactly the input order -- which is how the deterministic
virtual-clock tests and the outage experiment use it.  A per-request
``tick`` advances a :class:`~repro.exec.clock.VirtualClock` between
requests to model request interarrival time; it must be left at 0 for
real multi-threaded runs on the system clock.

The harness is interrupt-safe: on ``KeyboardInterrupt`` the stop flag
is set, worker threads wind down at their next request boundary, and
the partial :class:`LoadReport` is attached to the re-raised
:class:`LoadInterrupted` so callers (the CLI) can flush what was
measured before exiting with code 130.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.clock import VirtualClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRecorder
from repro.service.overload import (
    AdmissionQueue,
    ArrivalSchedule,
    ConcurrencyLimiter,
    OpenLoadReport,
    ServiceCostModel,
    StaticLimiter,
    run_open_loop,
)
from repro.service.service import OUTCOMES, CacheService


class LoadInterrupted(KeyboardInterrupt):
    """Ctrl-C during a load run; carries the partial report."""

    def __init__(self, report: "LoadReport") -> None:
        super().__init__("load run interrupted")
        self.report = report


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of *values* (0.0 for an empty input).

    Standard ceil-based nearest-rank: the p-th percentile of N sorted
    samples is the value at 1-indexed rank ``ceil(p * N)`` (and the
    minimum for p = 0).  The previous ``round()``-based rank used
    banker's rounding, so ties at ``.5`` resolved to the even rank --
    p50 of ``[1, 2]`` came out as 1 while p50 of ``[1, 2, 3, 4]`` came
    out as 3, an inconsistency the boundary tests now pin down.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


@dataclass
class LoadReport:
    """Everything one load run measured."""

    requests: int
    outcomes: Dict[str, int]
    coalesced: int
    fetch_attempts: int
    fetch_failures: int
    latency_p50: float
    latency_p90: float
    latency_p99: float
    elapsed: float                 # wall seconds (real clock)
    threads: int
    breaker_transitions: List[Tuple[float, str, str]] = field(
        default_factory=list)
    interrupted: bool = False

    @property
    def throughput(self) -> float:
        """Requests per wall second (0.0 for an instant run)."""
        if self.elapsed <= 0:
            return 0.0
        return self.requests / self.elapsed

    @property
    def availability(self) -> float:
        """Fraction of requests that got a value (hit, miss or stale)."""
        if self.requests == 0:
            return 0.0
        served = (self.outcomes["hit"] + self.outcomes["miss"]
                  + self.outcomes["stale"])
        return served / self.requests

    def check_accounting(self) -> None:
        """Assert the invariant sum(outcomes) == requests."""
        accounted = sum(self.outcomes.values())
        if accounted != self.requests:
            raise AssertionError(
                f"outcome accounting broken: {accounted} accounted "
                f"vs {self.requests} requests ({self.outcomes})")

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"requests      : {self.requests} over {self.threads} thread(s)"
            + (" [interrupted]" if self.interrupted else ""),
            f"outcomes      : " + "  ".join(
                f"{name}={self.outcomes[name]}" for name in OUTCOMES),
            f"coalesced     : {self.coalesced}",
            f"backend       : {self.fetch_attempts} fetch(es), "
            f"{self.fetch_failures} failed",
            f"availability  : {self.availability:.2%}",
            f"latency       : p50={self.latency_p50 * 1e3:.3f}ms "
            f"p90={self.latency_p90 * 1e3:.3f}ms "
            f"p99={self.latency_p99 * 1e3:.3f}ms",
            f"elapsed       : {self.elapsed:.3f}s "
            f"({self.throughput:.0f} req/s)",
        ]
        if self.breaker_transitions:
            moves = ", ".join(f"{src}->{dst}@{ts:.2f}s"
                              for ts, src, dst in self.breaker_transitions)
            lines.append(f"breaker       : {moves}")
        return "\n".join(lines)


def _report(service: CacheService, elapsed: float, threads: int,
            interrupted: bool) -> LoadReport:
    snap = service.metrics.snapshot()
    latencies = service.metrics.latencies()
    return LoadReport(
        requests=snap["requests"],
        outcomes={name: snap[name] for name in OUTCOMES},
        coalesced=snap["coalesced"],
        fetch_attempts=snap["fetch_attempts"],
        fetch_failures=snap["fetch_failures"],
        latency_p50=percentile(latencies, 0.50),
        latency_p90=percentile(latencies, 0.90),
        latency_p99=percentile(latencies, 0.99),
        elapsed=elapsed,
        threads=threads,
        breaker_transitions=service.breaker_transitions(),
        interrupted=interrupted,
    )


def run_load(
    service: CacheService,
    keys: Sequence,
    threads: int = 1,
    tick: float = 0.0,
    timeseries: Optional[TimeSeriesRecorder] = None,
) -> LoadReport:
    """Replay *keys* through *service* and measure what happened.

    ``tick`` > 0 advances the service's :class:`VirtualClock` by that
    many virtual seconds before each request (single-threaded
    deterministic mode only -- with real threads a shared virtual
    advance would be racy in *meaning*, not just in memory).

    *timeseries*, if given, is offered the service's clock time after
    every request and samples its registry whenever ``cadence`` clock
    seconds elapsed -- so a run over an injected outage window yields
    windowed outcome curves (hit/stale/error rates over time) rather
    than end-of-run totals.  Pair it with the same registry the
    service mirrors its counters into.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if tick < 0:
        raise ValueError(f"tick must be >= 0, got {tick}")
    if tick > 0 and threads != 1:
        raise ValueError("tick-based virtual time requires threads=1")
    if tick > 0 and not isinstance(service.clock, VirtualClock):
        raise ValueError("tick requires the service to run on a "
                         "VirtualClock")

    stop = threading.Event()
    started = time.perf_counter()
    origin = service.clock.now()

    def worker(slice_keys: Sequence) -> None:
        # Tick pacing uses absolute deadlines (sleep_until) rather than
        # relative advances, so the request schedule stays exact no
        # matter what the service itself does to the shared clock.
        for index, key in enumerate(slice_keys, start=1):
            if stop.is_set():
                return
            if tick:
                service.clock.sleep_until(origin + index * tick)
            service.get(key)
            if timeseries is not None:
                timeseries.maybe_sample(service.clock.now())

    if threads == 1:
        try:
            worker(keys)
        except KeyboardInterrupt:
            raise LoadInterrupted(_report(
                service, time.perf_counter() - started, threads,
                interrupted=True)) from None
        return _report(service, time.perf_counter() - started, threads,
                       interrupted=False)

    slices = [list(keys[t::threads]) for t in range(threads)]
    pool = [threading.Thread(target=worker, args=(s,), daemon=True)
            for s in slices]
    for thread in pool:
        thread.start()
    try:
        for thread in pool:
            # Join with a timeout so the main thread stays interruptible.
            while thread.is_alive():
                thread.join(timeout=0.1)
    except KeyboardInterrupt:
        stop.set()
        for thread in pool:
            thread.join(timeout=5.0)
        raise LoadInterrupted(_report(
            service, time.perf_counter() - started, threads,
            interrupted=True)) from None
    return _report(service, time.perf_counter() - started, threads,
                   interrupted=False)


def run_open_load(
    service: CacheService,
    keys: Sequence,
    schedule: ArrivalSchedule,
    queue: Optional[AdmissionQueue] = None,
    limiter: Optional[ConcurrencyLimiter] = None,
    cost: Optional[ServiceCostModel] = None,
    timeseries: Optional[TimeSeriesRecorder] = None,
    registry: Optional[MetricsRegistry] = None,
    metric_labels: Optional[dict] = None,
    tracer=None,
) -> OpenLoadReport:
    """Open-loop load against one :class:`CacheService`.

    Unlike :func:`run_load`, demand is an arrival *schedule*: requests
    arrive at their schedule times whether or not earlier ones
    finished, wait in a bounded admission *queue*, and dispatch when
    the *limiter* grants a slot -- so offered load can exceed capacity
    and the overload behaviour (shed, dropped, queue delay, goodput)
    becomes measurable.  Service time comes from the *cost* model,
    with promotion work charged on a serialised lock timeline; the
    schedule plays out on the service's clock (use a
    :class:`~repro.exec.clock.VirtualClock` for deterministic runs).
    The service's own retry budget, if configured, is reported.
    """
    # `is None` checks: an empty AdmissionQueue is falsy (len() == 0),
    # so `queue or default` would silently discard the caller's queue.
    if queue is None:
        queue = AdmissionQueue(capacity=1024)
    if limiter is None:
        limiter = StaticLimiter(8)
    probe = service.policy  # promotion_count aggregates inner caches
    report = run_open_loop(
        get=service.get,
        arrivals=schedule.times(),
        keys=keys,
        clock=service.clock,
        queue=queue,
        limiter=limiter,
        cost=cost,
        promotions_probe=lambda: probe.promotion_count,
        retry_budget=service.retry_budget,
        timeseries=timeseries,
        registry=registry,
        metric_labels=metric_labels,
        tracer=tracer,
    )
    return report


__all__ = ["LoadInterrupted", "LoadReport", "percentile", "run_load",
           "run_open_load"]
