"""Open-loop overload robustness: arrivals, admission, adaptive limits.

The closed-loop harness in :mod:`repro.service.loadgen` self-throttles:
each thread issues its next request only after the previous one
resolved, so offered load can never exceed service capacity and the
system under test is never *overloaded*.  Qiu, Yang and Harchol-Balter
("Can Increasing the Hit Ratio Hurt Cache Throughput?", HotNets'23)
show that is exactly the regime where promotion cost matters: under
open-loop arrivals, every lock-protected LRU reordering steals serving
capacity, and a higher hit ratio can *lower* delivered throughput.
This module supplies the missing pieces:

* **Arrival schedules** -- deterministic generators of arrival times
  (Poisson, bursty on/off, diurnal sinusoid, step overload) that model
  demand independent of completions.
* **Admission queue** -- a bounded queue between arrivals and the
  service with a pluggable overflow discipline (reject-new, drop-oldest
  or LIFO service order) and deadline-aware drops: a request that
  waited longer than its deadline is *dropped*, not served late.  This
  adds a seventh outcome, :data:`DROPPED`, to the conservation
  invariant.
* **Concurrency limiters** -- :class:`StaticLimiter` reproduces the
  old ``max_inflight`` cliff; :class:`AIMDLimiter` adapts the limit to
  observed queue delay (additive increase, multiplicative decrease,
  CoDel-style: react to the *minimum* delay per interval so one slow
  request does not collapse the window).
* **Retry budget** -- a token bucket over the retry path: requests
  deposit a fraction of a token, retries withdraw a whole one, so an
  outage can multiply load by at most ``1 + deposit`` instead of
  ``max_attempts`` (the retry-storm metastability guard).
* **Service cost model** -- charges each served request CPU time plus,
  crucially, the promotion cost the policy incurred on it, *serialised
  on one lock timeline*: promotions are the six-pointer-update critical
  section of paper §2, so total promotion work bounds throughput at
  ``1 / (promotions_per_request * promotion_cost)`` no matter how many
  workers run.  This turns the ``promotions`` proxy counter into
  measured goodput.
* **The open-loop engine** -- :func:`run_open_loop`, a deterministic
  event-driven simulation on the shared
  :class:`~repro.exec.clock.Clock`: arrivals enqueue at their schedule
  times regardless of completions, dispatch is gated by the limiter,
  service times come from the cost model, and every request ends in
  exactly one of the seven outcomes.
"""

from __future__ import annotations

import heapq
import math
import threading
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.reqtrace import NOT_SAMPLED
from repro.obs.timeseries import TimeSeriesRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.reqtrace import RequestTracer

Key = Hashable

#: The overload outcome: the request was admitted but timed out in the
#: queue (or was displaced by drop-oldest overflow) before service.
DROPPED = "dropped"

#: Queue overflow disciplines (see :class:`AdmissionQueue`).
QUEUE_POLICIES = ("fifo", "lifo", "drop-oldest")


# ----------------------------------------------------------------------
# Arrival schedules
# ----------------------------------------------------------------------

class ArrivalSchedule(ABC):
    """A deterministic open-loop demand curve.

    :meth:`times` returns the full list of arrival times in seconds
    from the schedule origin, strictly sorted.  Schedules are seeded,
    so the same configuration always produces the same demand -- the
    property every virtual-clock overload experiment leans on.
    """

    duration: float

    @abstractmethod
    def times(self) -> List[float]:
        """All arrival times in ``[0, duration)``, sorted ascending."""

    @staticmethod
    def _homogeneous(rng: np.random.Generator, rate: float, start: float,
                     end: float) -> List[float]:
        """Poisson arrivals at *rate* over ``[start, end)``."""
        if rate <= 0 or end <= start:
            return []
        out: List[float] = []
        t = start
        span = end - start
        # Draw interarrivals in blocks: one numpy call per ~expected
        # count beats a Python-level exponential per arrival.
        expected = max(16, int(rate * span * 1.2))
        while t < end:
            gaps = rng.exponential(1.0 / rate, size=expected)
            for gap in gaps:
                t += gap
                if t >= end:
                    break
                out.append(t)
        return out


def _check_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ValueError(f"{name} must be > 0, got {value}")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalSchedule):
    """Memoryless arrivals at a constant *rate* (requests/second)."""

    rate: float
    duration: float
    seed: int = 0

    def __post_init__(self) -> None:
        _check_positive(rate=self.rate, duration=self.duration)

    def times(self) -> List[float]:
        rng = np.random.default_rng(self.seed)
        return self._homogeneous(rng, self.rate, 0.0, self.duration)


@dataclass(frozen=True)
class OnOffArrivals(ArrivalSchedule):
    """Bursty on/off arrivals: ``burst * rate`` for ``on_seconds``,
    then ``rate`` for ``off_seconds``, repeating.

    The mean rate is between ``rate`` and ``burst * rate``; the bursts
    are what exercise queue overflow and the limiter's decrease path.
    """

    rate: float
    duration: float
    burst: float = 4.0
    on_seconds: float = 1.0
    off_seconds: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        _check_positive(rate=self.rate, duration=self.duration,
                        burst=self.burst, on_seconds=self.on_seconds,
                        off_seconds=self.off_seconds)

    def times(self) -> List[float]:
        rng = np.random.default_rng(self.seed)
        out: List[float] = []
        t = 0.0
        while t < self.duration:
            on_end = min(t + self.on_seconds, self.duration)
            out.extend(self._homogeneous(
                rng, self.burst * self.rate, t, on_end))
            off_end = min(on_end + self.off_seconds, self.duration)
            out.extend(self._homogeneous(rng, self.rate, on_end, off_end))
            t = off_end
        return out


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalSchedule):
    """Sinusoidal daily curve: rate(t) = rate * (1 + amplitude*sin).

    Generated by thinning a homogeneous process at the peak rate, the
    textbook non-homogeneous-Poisson construction, so interarrival
    statistics stay exact.
    """

    rate: float
    duration: float
    amplitude: float = 0.8
    period: float = 60.0
    seed: int = 0

    def __post_init__(self) -> None:
        _check_positive(rate=self.rate, duration=self.duration,
                        period=self.period)
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1], got {self.amplitude}")

    def times(self) -> List[float]:
        rng = np.random.default_rng(self.seed)
        peak = self.rate * (1.0 + self.amplitude)
        candidates = self._homogeneous(rng, peak, 0.0, self.duration)
        if not candidates:
            return []
        keep = rng.random(len(candidates))
        out: List[float] = []
        for t, u in zip(candidates, keep):
            instantaneous = self.rate * (
                1.0 + self.amplitude
                * math.sin(2.0 * math.pi * t / self.period))
            if u * peak < instantaneous:
                out.append(t)
        return out


@dataclass(frozen=True)
class StepArrivals(ArrivalSchedule):
    """Step overload: ``rate`` baseline, ``peak_rate`` inside the step.

    The X6 schedule: a sustained factor-of-N surge between
    ``step_start`` and ``step_end`` (fractions of the duration),
    long enough to saturate whatever bottleneck the cost model charges.
    """

    rate: float
    duration: float
    peak_rate: float
    step_start: float = 0.3
    step_end: float = 0.7
    seed: int = 0

    def __post_init__(self) -> None:
        _check_positive(rate=self.rate, duration=self.duration,
                        peak_rate=self.peak_rate)
        if not 0.0 <= self.step_start < self.step_end <= 1.0:
            raise ValueError(
                f"step window must satisfy 0 <= start < end <= 1, "
                f"got [{self.step_start}, {self.step_end}]")

    def window(self) -> Tuple[float, float]:
        """The step window in seconds."""
        return (self.step_start * self.duration,
                self.step_end * self.duration)

    def times(self) -> List[float]:
        rng = np.random.default_rng(self.seed)
        start, end = self.window()
        out = self._homogeneous(rng, self.rate, 0.0, start)
        out.extend(self._homogeneous(rng, self.peak_rate, start, end))
        out.extend(self._homogeneous(rng, self.rate, end, self.duration))
        return out


# ----------------------------------------------------------------------
# Admission queue
# ----------------------------------------------------------------------

@dataclass
class QueuedRequest:
    """One admitted-but-not-yet-served request."""

    key: Key
    arrived: float


class AdmissionQueue:
    """Bounded queue between open-loop arrivals and the service.

    * ``capacity`` -- maximum queued requests; arrivals beyond it are
      rejected (shed) or displace the oldest entry, per *policy*.
    * ``policy`` -- ``"fifo"`` serves oldest-first and rejects new
      arrivals when full; ``"lifo"`` serves newest-first (the
      adaptive-LIFO trick: under overload the newest request is the
      one most likely to still meet its deadline) and rejects when
      full; ``"drop-oldest"`` serves oldest-first but admits new
      arrivals by dropping the head -- the entry that has already
      waited longest and is most likely to be dead on arrival.
    * ``deadline`` -- seconds a request may wait before it is dropped
      at dispatch time instead of served late (``None`` = wait
      forever).  Deadline-aware drop is what keeps served latency
      bounded when the queue runs deep.
    """

    def __init__(self, capacity: int, policy: str = "fifo",
                 deadline: Optional[float] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in QUEUE_POLICIES:
            raise ValueError(
                f"policy must be one of {QUEUE_POLICIES}, got {policy!r}")
        if deadline is not None and deadline <= 0:
            raise ValueError(
                f"deadline must be > 0 or None, got {deadline}")
        self.capacity = capacity
        self.policy = policy
        self.deadline = deadline
        self._entries: "deque[QueuedRequest]" = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def offer(self, key: Key, now: float
              ) -> Tuple[bool, Optional[QueuedRequest]]:
        """Admit one arrival; returns ``(admitted, displaced)``.

        ``admitted`` is False when the queue is full and the policy
        rejects new arrivals (count it as shed).  ``displaced`` is the
        oldest entry pushed out under ``drop-oldest`` (count it as
        dropped).
        """
        displaced: Optional[QueuedRequest] = None
        if len(self._entries) >= self.capacity:
            if self.policy == "drop-oldest":
                displaced = self._entries.popleft()
            else:
                return False, None
        self._entries.append(QueuedRequest(key, now))
        return True, displaced

    def take(self, now: float
             ) -> Tuple[Optional[QueuedRequest], List[QueuedRequest]]:
        """Dequeue the next serviceable request.

        Returns ``(request, expired)``: *expired* are entries whose
        deadline passed while they waited (dropped, never served);
        *request* is ``None`` when the queue emptied out.
        """
        expired: List[QueuedRequest] = []
        while self._entries:
            if self.policy == "lifo":
                entry = self._entries.pop()
            else:
                entry = self._entries.popleft()
            if (self.deadline is not None
                    and now - entry.arrived > self.deadline):
                expired.append(entry)
                continue
            return entry, expired
        return None, expired


# ----------------------------------------------------------------------
# Concurrency limiters
# ----------------------------------------------------------------------

class ConcurrencyLimiter(ABC):
    """How many requests may be in service at once, and how it moves."""

    @property
    @abstractmethod
    def limit(self) -> int:
        """The current concurrency ceiling (always >= 1)."""

    def on_complete(self, queue_delay: float, now: float) -> None:
        """Feed one completed request's observed queue delay."""


class StaticLimiter(ConcurrencyLimiter):
    """The legacy ``max_inflight`` behaviour: a fixed ceiling."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self._limit = limit

    @property
    def limit(self) -> int:
        return self._limit


@dataclass(frozen=True)
class AimdConfig:
    """Tuning for :class:`AIMDLimiter` (validated eagerly).

    * ``target_delay`` -- acceptable queue delay in seconds; the
      limiter's setpoint.
    * ``min_limit`` / ``max_limit`` -- bounds on the concurrency limit.
    * ``initial`` -- starting limit (defaults to ``max_limit``).
    * ``increase`` -- additive step per good interval.
    * ``decrease`` -- multiplicative factor per bad interval (0, 1).
    * ``interval`` -- seconds per adjustment window; the CoDel idea is
      to act on the *minimum* delay observed across a whole interval,
      so a single slow request cannot trigger a collapse.
    """

    target_delay: float = 0.05
    min_limit: int = 1
    max_limit: int = 64
    initial: Optional[int] = None
    increase: int = 1
    decrease: float = 0.5
    interval: float = 1.0

    def __post_init__(self) -> None:
        _check_positive(target_delay=self.target_delay,
                        interval=self.interval)
        if self.min_limit < 1:
            raise ValueError(
                f"min_limit must be >= 1, got {self.min_limit}")
        if self.max_limit < self.min_limit:
            raise ValueError(
                f"max_limit must be >= min_limit, got {self.max_limit}")
        if self.initial is not None and not (
                self.min_limit <= self.initial <= self.max_limit):
            raise ValueError(
                f"initial must be within [min_limit, max_limit], "
                f"got {self.initial}")
        if self.increase < 1:
            raise ValueError(
                f"increase must be >= 1, got {self.increase}")
        if not 0.0 < self.decrease < 1.0:
            raise ValueError(
                f"decrease must be in (0, 1), got {self.decrease}")


class AIMDLimiter(ConcurrencyLimiter):
    """Adaptive concurrency: AIMD on CoDel-style minimum queue delay.

    Completed requests report the queue delay they experienced.  Every
    ``interval`` seconds the limiter looks at the *minimum* delay seen
    in the window: above ``target_delay`` means even the luckiest
    request queued too long -- the system is genuinely congested, so
    the limit is cut multiplicatively; at or below target the limit
    creeps up additively.  The result is the classic sawtooth that
    tracks the capacity cliff instead of falling off it.

    Thread-safe: the service layer calls :meth:`on_complete` from
    worker threads.
    """

    def __init__(self, config: Optional[AimdConfig] = None) -> None:
        self.config = config or AimdConfig()
        self._lock = threading.Lock()
        self._limit = (self.config.initial
                       if self.config.initial is not None
                       else self.config.max_limit)
        self._window_min: Optional[float] = None
        self._window_started: Optional[float] = None
        #: (time, new_limit) after every adjustment, oldest first.
        self.adjustments: List[Tuple[float, int]] = []

    @property
    def limit(self) -> int:
        with self._lock:
            return self._limit

    def on_complete(self, queue_delay: float, now: float) -> None:
        with self._lock:
            if self._window_started is None:
                self._window_started = now
            if (self._window_min is None
                    or queue_delay < self._window_min):
                self._window_min = queue_delay
            if now - self._window_started < self.config.interval:
                return
            congested = self._window_min > self.config.target_delay
            if congested:
                shrunk = int(self._limit * self.config.decrease)
                new_limit = max(self.config.min_limit, shrunk)
            else:
                new_limit = min(self.config.max_limit,
                                self._limit + self.config.increase)
            if new_limit != self._limit:
                self._limit = new_limit
                self.adjustments.append((now, new_limit))
            self._window_started = now
            self._window_min = None


def make_limiter(kind: str, static_limit: int = 8,
                 aimd: Optional[AimdConfig] = None) -> ConcurrencyLimiter:
    """``"static"`` or ``"aimd"`` -> a fresh limiter instance."""
    if kind == "static":
        return StaticLimiter(static_limit)
    if kind == "aimd":
        return AIMDLimiter(aimd)
    raise ValueError(
        f"limiter must be 'static' or 'aimd', got {kind!r}")


# ----------------------------------------------------------------------
# Retry budget
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RetryBudgetConfig:
    """Token bucket over the retry path (validated eagerly).

    * ``deposit`` -- tokens earned per first-try request (e.g. 0.1
      means retries may add at most ~10% extra backend load).
    * ``burst`` -- bucket capacity: how many retries a short blip may
      spend at once.
    * ``initial`` -- starting tokens (defaults to ``burst``).
    """

    deposit: float = 0.1
    burst: float = 10.0
    initial: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.deposit <= 1.0:
            raise ValueError(
                f"deposit must be in [0, 1], got {self.deposit}")
        _check_positive(burst=self.burst)
        if self.initial is not None and self.initial < 0:
            raise ValueError(
                f"initial must be >= 0, got {self.initial}")


class RetryBudget:
    """Thread-safe retry token bucket (the retry-storm guard).

    Every first-try request deposits ``deposit`` tokens (capped at
    ``burst``); every retry withdraws one whole token or is denied.
    During a sustained outage the deposits stop covering the
    withdrawals within ``burst`` retries, retries cease, and offered
    backend load stays at ``(1 + deposit) *`` the request rate instead
    of ``max_attempts *`` it -- which is the difference between an
    outage that ends when the backend recovers and one that sustains
    itself (retry-storm metastability).
    """

    def __init__(self, config: Optional[RetryBudgetConfig] = None) -> None:
        self.config = config or RetryBudgetConfig()
        self._lock = threading.Lock()
        self._tokens = (self.config.initial
                        if self.config.initial is not None
                        else self.config.burst)
        self.granted = 0
        self.denied = 0

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def record_request(self) -> None:
        """Deposit for one first-try request."""
        with self._lock:
            self._tokens = min(self.config.burst,
                               self._tokens + self.config.deposit)

    def try_spend(self) -> bool:
        """Withdraw one token for a retry; False = retry denied."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.granted += 1
                return True
            self.denied += 1
            return False


# ----------------------------------------------------------------------
# Service cost model
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ServiceCostModel:
    """Per-request service time, with promotion work serialised.

    * ``base_cost`` -- seconds of parallelisable work per request
      (parsing, hashing, copying the value out).
    * ``miss_penalty`` -- extra seconds a miss spends fetching from
      the backend (also parallelisable: misses wait on I/O).
    * ``promotion_cost`` -- seconds per *promotion* the policy
      performed for this request.  Promotions mutate the eviction
      order under one lock (paper §2), so this work is charged on a
      single shared lock timeline: total system throughput can never
      exceed ``1 / (promotions_per_request * promotion_cost)``
      regardless of worker count.  FIFO pays zero; LRU pays one per
      hit; QD-LP-FIFO pays (amortised) a few percent -- which is the
      whole hit-ratio-vs-throughput trade-off, now measured.
    """

    base_cost: float = 0.001
    miss_penalty: float = 0.004
    promotion_cost: float = 0.002

    def __post_init__(self) -> None:
        _check_positive(base_cost=self.base_cost)
        if self.miss_penalty < 0:
            raise ValueError(
                f"miss_penalty must be >= 0, got {self.miss_penalty}")
        if self.promotion_cost < 0:
            raise ValueError(
                f"promotion_cost must be >= 0, got {self.promotion_cost}")

    def parallel_time(self, outcome: str) -> float:
        """Seconds of worker time for one request with *outcome*."""
        if outcome == "miss":
            return self.base_cost + self.miss_penalty
        return self.base_cost

    def lock_time(self, promotions: int) -> float:
        """Seconds of serialised lock time for *promotions* reorderings."""
        return promotions * self.promotion_cost


# ----------------------------------------------------------------------
# The open-loop engine
# ----------------------------------------------------------------------

_ARRIVAL = 0
_DEPARTURE = 1


@dataclass
class OpenLoadReport:
    """Everything one open-loop run measured.

    ``offered`` counts schedule arrivals; the conservation invariant
    is ``sum(outcomes.values()) == offered`` where ``outcomes`` spans
    the service outcomes plus :data:`DROPPED` (queue-full rejections
    land in ``shed`` alongside the service's own load shedding).
    """

    offered: int
    outcomes: Dict[str, int]
    duration: float                 # virtual seconds of schedule
    served_latency_p50: float       # arrival -> completion (sojourn)
    served_latency_p99: float
    queue_delay_p50: float          # arrival -> dispatch
    queue_delay_p99: float
    max_queue_depth: int
    final_limit: int
    min_limit_seen: int
    limiter_adjustments: int
    lock_busy: float                # serialised promotion-lock seconds
    promotions: int
    retries_granted: int = 0
    retries_denied: int = 0

    @property
    def served(self) -> int:
        """Requests that got a value (hit / miss / replica_hit / stale)."""
        return sum(self.outcomes.get(name, 0)
                   for name in ("hit", "miss", "replica_hit", "stale"))

    @property
    def goodput(self) -> float:
        """Served requests per virtual second of the schedule."""
        if self.duration <= 0:
            return 0.0
        return self.served / self.duration

    @property
    def offered_rate(self) -> float:
        """Arrivals per virtual second of the schedule."""
        if self.duration <= 0:
            return 0.0
        return self.offered / self.duration

    @property
    def hit_ratio(self) -> float:
        """Cache-served fraction of *served* requests."""
        if self.served == 0:
            return 0.0
        hits = sum(self.outcomes.get(name, 0)
                   for name in ("hit", "replica_hit", "stale"))
        return hits / self.served

    @property
    def drop_ratio(self) -> float:
        """Fraction of offered requests dropped or shed."""
        if self.offered == 0:
            return 0.0
        lost = (self.outcomes.get(DROPPED, 0)
                + self.outcomes.get("shed", 0))
        return lost / self.offered

    def check_conservation(self) -> None:
        """Assert every offered request ended in exactly one outcome."""
        accounted = sum(self.outcomes.values())
        if accounted != self.offered:
            raise AssertionError(
                f"open-loop accounting broken: {accounted} accounted "
                f"vs {self.offered} offered ({self.outcomes})")

    def render(self) -> str:
        """Human-readable multi-line summary."""
        outcome_text = "  ".join(
            f"{name}={count}"
            for name, count in sorted(self.outcomes.items()) if count)
        return "\n".join([
            f"offered       : {self.offered} over {self.duration:.1f}s "
            f"({self.offered_rate:.0f} req/s)",
            f"outcomes      : {outcome_text or '(none)'}",
            f"goodput       : {self.goodput:.1f} req/s served "
            f"({self.served}/{self.offered}, "
            f"drop ratio {self.drop_ratio:.2%})",
            f"hit ratio     : {self.hit_ratio:.2%} of served",
            f"queue delay   : p50={self.queue_delay_p50 * 1e3:.1f}ms "
            f"p99={self.queue_delay_p99 * 1e3:.1f}ms "
            f"(depth max {self.max_queue_depth})",
            f"sojourn       : p50={self.served_latency_p50 * 1e3:.1f}ms "
            f"p99={self.served_latency_p99 * 1e3:.1f}ms",
            f"limiter       : final={self.final_limit} "
            f"min={self.min_limit_seen} "
            f"({self.limiter_adjustments} adjustments)",
            f"promotion lock: {self.lock_busy:.2f}s busy "
            f"({self.promotions} promotions)",
            f"retries       : {self.retries_granted} granted, "
            f"{self.retries_denied} budget-denied",
        ])


class _OverloadObs:
    """Optional registry mirroring for the open-loop engine."""

    def __init__(self, registry: Optional[MetricsRegistry],
                 labels: Optional[Dict[str, str]]) -> None:
        self.registry = registry
        if registry is None:
            return
        extra = dict(labels or {})
        self.offered = registry.counter(
            "overload_offered_total", "Open-loop schedule arrivals",
            **extra)
        self.served = registry.counter(
            "overload_served_total", "Requests served a value", **extra)
        self.dropped = registry.counter(
            "overload_dropped_total",
            "Requests dropped in the admission queue", **extra)
        self.shed = registry.counter(
            "overload_shed_total",
            "Requests rejected at the full admission queue", **extra)
        self.depth = registry.gauge(
            "overload_queue_depth", "Admission queue depth", **extra)
        self.limit = registry.gauge(
            "overload_limit", "Current concurrency limit", **extra)


def run_open_loop(
    get: Callable[[Key], Any],
    arrivals: Sequence[float],
    keys: Sequence[Key],
    clock: Any,
    queue: AdmissionQueue,
    limiter: ConcurrencyLimiter,
    cost: Optional[ServiceCostModel] = None,
    promotions_probe: Optional[Callable[[], int]] = None,
    retry_budget: Optional[RetryBudget] = None,
    timeseries: Optional[TimeSeriesRecorder] = None,
    registry: Optional[MetricsRegistry] = None,
    metric_labels: Optional[Dict[str, str]] = None,
    tracer: Optional["RequestTracer"] = None,
) -> OpenLoadReport:
    """Drive open-loop *arrivals* through *get* and measure delivery.

    A deterministic event-driven loop on *clock* (normally a
    :class:`~repro.exec.clock.VirtualClock`): requests arrive at their
    schedule times no matter what completions do, wait in *queue*,
    dispatch when the *limiter* grants a slot, and occupy it for the
    *cost* model's service time -- with the promotion work the policy
    performed charged on a single serialised lock timeline.  *get* is
    a :meth:`CacheService.get <repro.service.service.CacheService.get>`
    or :meth:`CacheCluster.get <repro.cluster.cluster.CacheCluster.get>`
    bound method; *promotions_probe* returns the cumulative promotion
    count behind it.  Keys are dealt to arrivals in order, cycling if
    the schedule outlasts the key sequence.

    With a *tracer* (:class:`~repro.obs.reqtrace.RequestTracer` on the
    same *clock*) the engine owns the per-request root span: queue wait
    and the serialised promotion-lock interval become child spans, the
    context is propagated into *get* -- which must then accept a
    ``ctx=`` keyword, as ``CacheService.get``/``CacheCluster.get`` do --
    and admission drops become ``dropped`` roots the tail sampler
    always keeps.
    """
    if not keys:
        raise ValueError("keys must be non-empty")
    cost = cost or ServiceCostModel()
    obs = _OverloadObs(registry, metric_labels)
    outcomes: Dict[str, int] = {DROPPED: 0, "shed": 0}
    sojourns: List[float] = []
    delays: List[float] = []
    events: List[Tuple[float, int, int, Any]] = []
    seq = 0
    inflight = 0
    lock_free_at = 0.0
    lock_busy = 0.0
    max_depth = 0
    min_limit_seen = limiter.limit
    promotions_before = promotions_probe() if promotions_probe else 0

    duration = float(arrivals[-1]) if len(arrivals) else 0.0
    origin = clock.now()
    for index, at in enumerate(arrivals):
        events.append((origin + float(at), seq, _ARRIVAL,
                       keys[index % len(keys)]))
        seq += 1
    heapq.heapify(events)
    offered = len(events)

    def count(outcome: str) -> None:
        outcomes[outcome] = outcomes.get(outcome, 0) + 1

    def drop(entry: QueuedRequest, reason: str = "deadline") -> None:
        count(DROPPED)
        if obs.registry is not None:
            obs.dropped.inc()
        if tracer is not None:
            # A dropped request still gets a root: queue wait is all
            # that happened to it, and "dropped" is a tail-keep outcome.
            now = clock.now()
            root = tracer.start("request", start=entry.arrived,
                                key=repr(entry.key))
            if root is not None:
                root.add_span("queue.wait", entry.arrived, now,
                              reason=reason)
                root.end(outcome=DROPPED, at=now)

    def dispatch(now: float) -> None:
        nonlocal inflight, lock_free_at, lock_busy, seq, min_limit_seen
        while len(queue) and inflight < limiter.limit:
            entry, expired = queue.take(now)
            for dead in expired:
                drop(dead)
            if entry is None:
                break
            delay = now - entry.arrived
            delays.append(delay)
            root = (tracer.start("request", start=entry.arrived,
                                 key=repr(entry.key))
                    if tracer is not None else None)
            if root is not None and delay > 0.0:
                root.add_span("queue.wait", entry.arrived, now,
                              depth=len(queue))
            before = promotions_probe() if promotions_probe else 0
            if tracer is not None:
                # Always propagate a context once a tracer owns the
                # roots: NOT_SAMPLED tells the service the head-sampling
                # decision is made, so it doesn't start a root of its
                # own for requests that lost the coin flip.
                result = get(entry.key,
                             ctx=root.ctx if root is not None
                             else NOT_SAMPLED)
            else:
                result = get(entry.key)
            promos = ((promotions_probe() - before)
                      if promotions_probe else 0)
            count(result.outcome)
            if obs.registry is not None and getattr(result, "ok", False):
                obs.served.inc()
            # The worker holds the request for its parallel time; the
            # promotion work additionally queues on the shared lock
            # timeline, which is the throughput ceiling under load.
            now_after = clock.now()   # get() may have advanced the clock
            work_start = max(now, now_after)
            lock_time = cost.lock_time(promos)
            completion = work_start + cost.parallel_time(result.outcome)
            if lock_time > 0.0:
                lock_start = max(work_start, lock_free_at)
                lock_free_at = lock_start + lock_time
                lock_busy += lock_time
                completion = max(completion, lock_free_at)
                if root is not None:
                    # The promotion-cost span: time this request's
                    # promotions occupied the serialised lock timeline
                    # (the paper's per-request cost of eager promotion).
                    root.add_span("promotion.lock", lock_start,
                                  lock_free_at, promotions=promos,
                                  waited=round(lock_start - work_start, 9))
            if root is not None:
                root.end(outcome=result.outcome, at=completion)
            sojourns.append(completion - entry.arrived)
            heapq.heappush(events, (completion, seq, _DEPARTURE, delay))
            seq += 1
            inflight += 1
            if limiter.limit < min_limit_seen:
                min_limit_seen = limiter.limit

    while events:
        at, _, kind, payload = heapq.heappop(events)
        clock.sleep_until(at)
        now = clock.now()
        if kind == _ARRIVAL:
            if obs.registry is not None:
                obs.offered.inc()
            admitted, displaced = queue.offer(payload, now)
            if displaced is not None:
                drop(displaced, reason="displaced")
            if not admitted:
                count("shed")
                if obs.registry is not None:
                    obs.shed.inc()
        else:
            inflight -= 1
            limiter.on_complete(payload, now)
            if limiter.limit < min_limit_seen:
                min_limit_seen = limiter.limit
        dispatch(now)
        if len(queue) > max_depth:
            max_depth = len(queue)
        if obs.registry is not None:
            obs.depth.set(len(queue))
            obs.limit.set(limiter.limit)
        if timeseries is not None:
            timeseries.maybe_sample(now)

    # The event loop drains fully (dispatch runs after every departure
    # until the queue empties), so this is a conservation backstop: any
    # entry somehow still queued is accounted as dropped, never lost.
    while len(queue):  # pragma: no cover - drain is complete by design
        entry, dead = queue.take(clock.now())
        for stale in dead:
            drop(stale)
        if entry is not None:
            drop(entry)

    from repro.service.loadgen import percentile

    promotions_after = promotions_probe() if promotions_probe else 0
    report = OpenLoadReport(
        offered=offered,
        outcomes={name: value for name, value in outcomes.items()},
        duration=duration,
        served_latency_p50=percentile(sojourns, 0.50),
        served_latency_p99=percentile(sojourns, 0.99),
        queue_delay_p50=percentile(delays, 0.50),
        queue_delay_p99=percentile(delays, 0.99),
        max_queue_depth=max_depth,
        final_limit=limiter.limit,
        min_limit_seen=min_limit_seen,
        limiter_adjustments=len(getattr(limiter, "adjustments", ())),
        lock_busy=lock_busy,
        promotions=promotions_after - promotions_before,
        retries_granted=retry_budget.granted if retry_budget else 0,
        retries_denied=retry_budget.denied if retry_budget else 0,
    )
    return report


def make_schedule(kind: str, rate: float, duration: float,
                  peak_rate: Optional[float] = None,
                  burst: float = 4.0, seed: int = 0) -> ArrivalSchedule:
    """CLI-friendly schedule factory (``poisson|onoff|diurnal|step``)."""
    if kind == "poisson":
        return PoissonArrivals(rate=rate, duration=duration, seed=seed)
    if kind == "onoff":
        return OnOffArrivals(rate=rate, duration=duration, burst=burst,
                             seed=seed)
    if kind == "diurnal":
        return DiurnalArrivals(rate=rate, duration=duration,
                               period=max(duration / 2.0, 1e-9),
                               seed=seed)
    if kind == "step":
        return StepArrivals(rate=rate, duration=duration,
                            peak_rate=peak_rate or burst * rate,
                            seed=seed)
    raise ValueError(
        f"schedule must be one of poisson|onoff|diurnal|step, "
        f"got {kind!r}")


__all__ = [
    "AIMDLimiter",
    "AdmissionQueue",
    "AimdConfig",
    "ArrivalSchedule",
    "ConcurrencyLimiter",
    "DROPPED",
    "DiurnalArrivals",
    "OnOffArrivals",
    "OpenLoadReport",
    "PoissonArrivals",
    "QUEUE_POLICIES",
    "QueuedRequest",
    "RetryBudget",
    "RetryBudgetConfig",
    "ServiceCostModel",
    "StaticLimiter",
    "StepArrivals",
    "make_limiter",
    "make_schedule",
    "run_open_loop",
]
