"""A thread-safe, fault-tolerant read-through cache service.

:class:`CacheService` puts any :class:`~repro.core.base.EvictionPolicy`
in front of a :class:`~repro.service.backend.Backend` and serves
concurrent ``get(key)`` traffic with production-grade failure handling:

* **Request coalescing (single-flight)** -- concurrent misses on one
  key share a single backend fetch; one caller becomes the *leader*,
  the rest block on its flight and inherit its outcome.  A flash crowd
  on a cold key issues exactly one origin fetch.
* **Retry with exponential backoff and deadlines** -- backend fetches
  reuse :class:`~repro.exec.retry.RetryPolicy`; per-fetch elapsed time
  over ``deadline`` counts as a timeout.  All waiting goes through the
  shared :class:`~repro.exec.clock.Clock`, so tests never sleep.
* **Circuit breaker** -- consecutive backend failures trip a
  :class:`~repro.service.breaker.CircuitBreaker`; while open, misses
  degrade instantly instead of queueing on a dead origin.
* **Graceful degradation** -- on fetch failure the service serves a
  stale copy if one exists within ``ttl + stale_ttl`` (bounded
  staleness), negative-caches the error for ``negative_ttl`` seconds
  so repeated misses don't re-hammer the origin, and sheds load when
  more than ``max_inflight`` fetches are already in flight.

Every request resolves to exactly one outcome -- ``hit``, ``miss``
(fetched), ``stale``, ``shed`` or ``error`` -- and the accounting
invariant ``hits + misses + stale + shed + errors == requests`` holds
under arbitrary concurrency (the stress tests hammer it).

The eviction policy's own structures are guarded by one service lock,
matching the paper's §2 model of a production cache: every promotion a
policy performs on the hit path happens inside the critical section,
which is exactly why lazy-promotion policies serve concurrent traffic
better than LRU.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional

from repro.core.base import CacheListener, EvictionPolicy
from repro.exec.clock import Clock, SystemClock
from repro.exec.retry import NO_RETRY, RetryPolicy
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    Reservoir,
)
from repro.service.backend import Backend
from repro.service.breaker import (
    STATE_VALUES,
    BreakerConfig,
    CircuitBreaker,
)
from repro.service.faults import BackendTimeout
from repro.service.overload import (
    AIMDLimiter,
    AimdConfig,
    RetryBudget,
    RetryBudgetConfig,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.reqtrace import ActiveSpan, RequestTracer, TraceContext

Key = Hashable

#: Per-outcome latency sample size kept by :class:`ServiceMetrics`.
#: Percentile error at this size is well under the 5% CI diff gates.
LATENCY_RESERVOIR_SIZE = 4096

HIT = "hit"        # fresh value served from the cache
MISS = "miss"      # value fetched from the backend (or coalesced onto one)
STALE = "stale"    # expired value served because the backend is failing
SHED = "shed"      # rejected: too many fetches already in flight
ERROR = "error"    # no value: backend failed and nothing to degrade to

OUTCOMES = (HIT, MISS, STALE, SHED, ERROR)


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for :class:`CacheService` (validated eagerly).

    * ``ttl`` -- seconds a fetched value counts as fresh; ``None``
      means values never expire.
    * ``stale_ttl`` -- extra seconds past ``ttl`` during which an
      expired value may still be served *if the backend is failing*
      (bounded staleness; 0 disables serve-stale).
    * ``negative_ttl`` -- seconds a backend failure is remembered;
      requests within the window fail fast without touching the
      backend (0 disables negative caching).
    * ``max_inflight`` -- cap on concurrent backend fetches; misses
      beyond it are shed.  ``None`` means unlimited.
    * ``deadline`` -- per-fetch time budget; a slower fetch counts as
      a timeout failure even if it eventually returned.
    * ``retry`` -- backoff schedule for failed fetches
      (:data:`~repro.exec.retry.NO_RETRY` by default).
    * ``breaker`` -- circuit-breaker configuration, or ``None`` to
      disable the breaker entirely.
    * ``limiter`` -- adaptive concurrency limiting
      (:class:`~repro.service.overload.AimdConfig`): the in-flight
      fetch cap moves with observed fetch latency (AIMD) instead of
      sitting at a static ``max_inflight``.  Mutually exclusive with
      ``max_inflight`` -- one knob must own the shed decision.
    * ``retry_budget`` -- token bucket over the retry path
      (:class:`~repro.service.overload.RetryBudgetConfig`): retries
      beyond the budget are cut off instead of amplifying an outage
      into a retry storm.  ``None`` leaves retries unbudgeted.
    """

    ttl: Optional[float] = None
    stale_ttl: float = 0.0
    negative_ttl: float = 0.0
    max_inflight: Optional[int] = None
    deadline: Optional[float] = None
    retry: RetryPolicy = NO_RETRY
    breaker: Optional[BreakerConfig] = field(default_factory=BreakerConfig)
    limiter: Optional[AimdConfig] = None
    retry_budget: Optional[RetryBudgetConfig] = None

    def __post_init__(self) -> None:
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError(
                f"ttl must be > 0 seconds or None (never expire), "
                f"got {self.ttl}")
        if self.stale_ttl < 0:
            raise ValueError(
                f"stale_ttl must be >= 0 seconds, got {self.stale_ttl}")
        if self.negative_ttl < 0:
            raise ValueError(
                f"negative_ttl must be >= 0 seconds, "
                f"got {self.negative_ttl}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1 or None (unlimited), "
                f"got {self.max_inflight}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(
                f"deadline must be > 0 seconds or None (unbounded), "
                f"got {self.deadline}")
        if not isinstance(self.retry, RetryPolicy):
            raise TypeError(
                f"retry must be a RetryPolicy, got {type(self.retry).__name__}")
        if self.breaker is not None and not isinstance(self.breaker,
                                                       BreakerConfig):
            raise TypeError(
                f"breaker must be a BreakerConfig or None, "
                f"got {type(self.breaker).__name__}")
        if self.limiter is not None and not isinstance(self.limiter,
                                                       AimdConfig):
            raise TypeError(
                f"limiter must be an AimdConfig or None, "
                f"got {type(self.limiter).__name__}")
        if self.limiter is not None and self.max_inflight is not None:
            raise ValueError(
                "limiter and max_inflight are mutually exclusive: the "
                "adaptive limiter replaces the static in-flight cap")
        if self.retry_budget is not None and not isinstance(
                self.retry_budget, RetryBudgetConfig):
            raise TypeError(
                f"retry_budget must be a RetryBudgetConfig or None, "
                f"got {type(self.retry_budget).__name__}")


@dataclass
class GetResult:
    """What one ``get`` resolved to."""

    key: Key
    value: Any
    outcome: str           # one of OUTCOMES
    coalesced: bool        # served by another request's fetch
    latency: float         # seconds on the service clock
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether a value (fresh or stale) was served."""
        return self.outcome in (HIT, MISS, STALE)


class ServiceMetrics:
    """Thread-safe per-outcome accounting for one service instance.

    With a :class:`~repro.obs.metrics.MetricsRegistry` supplied, every
    event is mirrored into registry counters and latency histograms
    (``service_requests_total{outcome=}``,
    ``service_request_latency_seconds{outcome=}``,
    ``service_coalesced_total``, ``service_fetch_attempts_total``,
    ``service_fetch_failures_total``, ``service_negative_hits_total``)
    so the run can be exported via :mod:`repro.obs.export`.  Extra
    *labels* (e.g. ``{"shard": "s2"}`` from the cluster router) are
    attached to every mirrored metric, which is how per-shard serving
    behaviour stays separable in one shared registry.  The raw
    per-outcome counts stay authoritative; latencies are kept as
    per-outcome fixed-size :class:`~repro.obs.metrics.Reservoir`
    samples (seeded, so single-threaded runs are deterministic), which
    holds memory constant on million-request open-loop runs while the
    load generator's percentile report still reads raw samples, not
    buckets.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 labels: Optional[Dict[str, str]] = None) -> None:
        self._lock = threading.Lock()
        self.counts: Dict[str, int] = {outcome: 0 for outcome in OUTCOMES}
        self.coalesced = 0
        self.fetch_attempts = 0
        self.fetch_failures = 0
        self.negative_hits = 0
        self._latencies: Dict[str, Reservoir] = {
            outcome: Reservoir(LATENCY_RESERVOIR_SIZE, seed=index)
            for index, outcome in enumerate(OUTCOMES)}
        self.registry = registry
        self.labels = dict(labels or {})
        if registry is not None:
            extra = self.labels
            self._obs_requests = {
                outcome: registry.counter(
                    "service_requests_total", "Requests by outcome",
                    outcome=outcome, **extra)
                for outcome in OUTCOMES}
            self._obs_latency = {
                outcome: registry.histogram(
                    "service_request_latency_seconds",
                    "Request latency by outcome",
                    DEFAULT_LATENCY_BUCKETS, outcome=outcome, **extra)
                for outcome in OUTCOMES}
            self._obs_coalesced = registry.counter(
                "service_coalesced_total",
                "Requests served by another request's fetch", **extra)
            self._obs_fetch_attempts = registry.counter(
                "service_fetch_attempts_total", "Backend fetch attempts",
                **extra)
            self._obs_fetch_failures = registry.counter(
                "service_fetch_failures_total", "Failed backend fetches",
                **extra)
            self._obs_negative_hits = registry.counter(
                "service_negative_hits_total",
                "Requests answered from the negative cache", **extra)

    def record(self, outcome: str, latency: float,
               coalesced: bool, exemplar: Optional[str] = None) -> bool:
        """Account one finished request.

        ``exemplar`` optionally offers a trace id to the latency
        histogram's bucket (see :meth:`Histogram.observe`); returns
        True when it was taken, so the caller can pin that trace.
        """
        with self._lock:
            self.counts[outcome] += 1
            self._latencies[outcome].add(latency)
            if coalesced:
                self.coalesced += 1
        took = False
        if self.registry is not None:
            self._obs_requests[outcome].inc()
            took = self._obs_latency[outcome].observe(latency,
                                                      exemplar=exemplar)
            if coalesced:
                self._obs_coalesced.inc()
        return took

    def record_fetch(self, ok: bool) -> None:
        """Account one backend fetch attempt."""
        with self._lock:
            self.fetch_attempts += 1
            if not ok:
                self.fetch_failures += 1
        if self.registry is not None:
            self._obs_fetch_attempts.inc()
            if not ok:
                self._obs_fetch_failures.inc()

    def record_negative_hit(self) -> None:
        """Account one request answered from the negative cache."""
        with self._lock:
            self.negative_hits += 1
        if self.registry is not None:
            self._obs_negative_hits.inc()

    # -- views ---------------------------------------------------------
    @property
    def requests(self) -> int:
        with self._lock:
            return sum(self.counts.values())

    def count(self, outcome: str) -> int:
        with self._lock:
            return self.counts[outcome]

    @property
    def accounted(self) -> int:
        """hits + misses + stale + shed + errors (== requests, always)."""
        return self.requests

    def latencies(self, outcome: Optional[str] = None) -> List[float]:
        """Sampled latencies, for one outcome or all of them."""
        with self._lock:
            if outcome is not None:
                return self._latencies[outcome].values()
            merged: List[float] = []
            for reservoir in self._latencies.values():
                merged.extend(reservoir.values())
            return merged

    def snapshot(self) -> Dict[str, int]:
        """A consistent copy of every counter."""
        with self._lock:
            snap = dict(self.counts)
            snap["requests"] = sum(self.counts.values())
            snap["coalesced"] = self.coalesced
            snap["fetch_attempts"] = self.fetch_attempts
            snap["fetch_failures"] = self.fetch_failures
            snap["negative_hits"] = self.negative_hits
            return snap


@dataclass
class _Entry:
    """A cached value plus the freshness metadata TTLs need."""

    value: Any
    fetched_at: float


class _Flight:
    """One in-progress backend fetch that followers can latch onto."""

    __slots__ = ("event", "outcome", "value", "error", "waiters",
                 "leader_trace_id", "leader_span_id")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.outcome: str = ERROR
        self.value: Any = None
        self.error: Optional[str] = None
        self.waiters = 0
        # When the leader's request is traced, followers link their
        # spans to the leader's so a coalesced trace shows *whose*
        # fetch actually served it.
        self.leader_trace_id: Optional[str] = None
        self.leader_span_id: Optional[int] = None


class _StoreReaper(CacheListener):
    """Drop the value store's entry when the policy evicts a key.

    Runs inside the service lock (all policy calls are made under it),
    so the plain dict mutation is safe.
    """

    def __init__(self, store: Dict[Key, _Entry]) -> None:
        self._store = store

    def on_evict(self, key: Key) -> None:
        self._store.pop(key, None)


class CacheService:
    """Thread-safe read-through cache over a policy and a backend.

    The single public operation is :meth:`get`; everything else --
    coalescing, retries, breaker, degradation -- happens behind it.
    ``clock`` defaults to the real :class:`~repro.exec.clock.SystemClock`;
    tests inject a :class:`~repro.exec.clock.VirtualClock` and drive
    TTLs, backoffs, outages and breaker cooldowns deterministically.
    """

    #: real-time cap on waiting for another request's fetch; a safety
    #: net only -- leaders always settle their flight, even on error.
    FOLLOWER_WAIT = 30.0

    def __init__(
        self,
        policy: EvictionPolicy,
        backend: Backend,
        config: Optional[ServiceConfig] = None,
        clock: Optional[Clock] = None,
        registry: Optional[MetricsRegistry] = None,
        metric_labels: Optional[Dict[str, str]] = None,
        tracer: Optional["RequestTracer"] = None,
    ) -> None:
        if not isinstance(policy, EvictionPolicy):
            raise TypeError(
                f"policy must be an EvictionPolicy, "
                f"got {type(policy).__name__}")
        if not hasattr(backend, "fetch"):
            raise TypeError(
                f"backend must provide fetch(key), "
                f"got {type(backend).__name__}")
        self.policy = policy
        self.backend = backend
        self.config = config or ServiceConfig()
        self.clock = clock or SystemClock()
        # Request tracing is opt-in; must share this service's clock so
        # span timestamps and request latencies agree.
        self.tracer = tracer
        self.metrics = ServiceMetrics(registry, labels=metric_labels)
        self.limiter: Optional[AIMDLimiter] = (
            AIMDLimiter(self.config.limiter)
            if self.config.limiter is not None else None)
        self.retry_budget: Optional[RetryBudget] = (
            RetryBudget(self.config.retry_budget)
            if self.config.retry_budget is not None else None)
        self.breaker: Optional[CircuitBreaker] = (
            CircuitBreaker(self.config.breaker, self.clock)
            if self.config.breaker is not None else None)
        if registry is not None and self.limiter is not None:
            limit_gauge = registry.gauge(
                "service_inflight_limit",
                "Current adaptive in-flight fetch limit",
                **(metric_labels or {}))
            limit_gauge.set(self.limiter.limit)
            self._limit_gauge = limit_gauge
        else:
            self._limit_gauge = None
        if registry is not None and self.breaker is not None:
            gauge = registry.gauge("service_breaker_state",
                                   "0=closed, 1=half-open, 2=open",
                                   **(metric_labels or {}))
            gauge.set(STATE_VALUES[self.breaker.state])
            self.breaker.on_transition = (
                lambda _old, new, _now: gauge.set(STATE_VALUES[new]))
        self._lock = threading.Lock()
        self._store: Dict[Key, _Entry] = {}
        self._negative: Dict[Key, tuple] = {}   # key -> (error, expires_at)
        self._flights: Dict[Key, _Flight] = {}
        policy.add_listener(_StoreReaper(self._store))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def get(self, key: Key,
            ctx: Optional["TraceContext"] = None) -> GetResult:
        """Serve one request for *key* (thread-safe).

        ``ctx`` optionally joins an existing request trace (propagated
        by the cluster router or the open-loop engine); without a
        tracer it is ignored and the request path is unchanged.
        """
        t0 = self.clock.now()
        span = None
        if self.tracer is not None:
            span = self.tracer.start("service.get", ctx=ctx, start=t0,
                                     key=repr(key), **self.metrics.labels)
        flight: Optional[_Flight] = None
        is_leader = False
        with self._lock:
            # Fresh cached value: the fast path.
            entry = self._store.get(key)
            if entry is not None and key in self.policy:
                age = t0 - entry.fetched_at
                if self.config.ttl is None or age <= self.config.ttl:
                    self.policy.request(key)  # hit: policy may promote
                    return self._finish(key, entry.value, HIT, False, t0,
                                        span=span)
            # Recent backend failure: fail fast without a fetch.
            negative = self._negative.get(key)
            if negative is not None:
                error, expires_at = negative
                if t0 < expires_at:
                    self.metrics.record_negative_hit()
                    if span is not None:
                        span.note(negative_cache=True)
                    return self._finish(
                        key, None, ERROR, False, t0,
                        error=f"negative-cached: {error}", span=span)
                del self._negative[key]
            # Someone is already fetching this key: join their flight.
            flight = self._flights.get(key)
            if flight is not None:
                flight.waiters += 1
            else:
                # Load shedding: refuse to queue more backend work.
                # The cap is either the static max_inflight knob or the
                # adaptive limiter's current limit.
                inflight_cap = self.config.max_inflight
                if inflight_cap is None and self.limiter is not None:
                    inflight_cap = self.limiter.limit
                if (inflight_cap is not None
                        and len(self._flights) >= inflight_cap):
                    if span is not None:
                        span.note(shed=True, inflight=len(self._flights),
                                  inflight_cap=inflight_cap)
                    stale = self._stale_entry(key, t0)
                    if stale is not None:
                        if span is not None:
                            span.note(served_stale=True)
                        return self._finish(key, stale.value, STALE,
                                            False, t0,
                                            error="load shed; served stale",
                                            span=span)
                    return self._finish(
                        key, None, SHED, False, t0,
                        error=f"load shed: {len(self._flights)} fetches "
                              f"in flight (max {inflight_cap})", span=span)
                # Open breaker: degrade instantly, no flight.
                if self.breaker is not None and not self.breaker.allow():
                    if span is not None:
                        span.note(breaker="open")
                        span.mark("breaker-open")
                    stale = self._stale_entry(key, t0)
                    if stale is not None:
                        if span is not None:
                            span.note(served_stale=True)
                        return self._finish(key, stale.value, STALE,
                                            False, t0,
                                            error="circuit open; served stale",
                                            span=span)
                    return self._finish(key, None, ERROR, False, t0,
                                        error="circuit breaker open",
                                        span=span)
                flight = _Flight()
                if span is not None:
                    flight.leader_trace_id = span.trace_id
                    flight.leader_span_id = span.span_id
                self._flights[key] = flight
                is_leader = True

        if not is_leader:
            return self._follow(key, flight, t0, span=span)
        return self._lead(key, flight, t0, span=span)

    #: alias so the service can stand in where a callable is expected
    __call__ = get

    def contains_fresh(self, key: Key) -> bool:
        """Whether a fresh (non-expired) value for *key* is cached."""
        with self._lock:
            entry = self._store.get(key)
            if entry is None or key not in self.policy:
                return False
            if self.config.ttl is None:
                return True
            return self.clock.now() - entry.fetched_at <= self.config.ttl

    # ------------------------------------------------------------------
    # Replica / cluster hooks
    # ------------------------------------------------------------------
    def put(self, key: Key, value: Any) -> None:
        """Seed *key* -> *value* as if it had just been fetched.

        The replica-write hook: the cluster router pushes a hot key's
        freshly fetched value into replica shards through this, and
        rebalancing migrates surviving entries with it.  The key is
        admitted into the eviction policy (evictions fire normally) and
        any negative-cache entry for it is cleared.
        """
        with self._lock:
            self.policy.request(key)
            self._store[key] = _Entry(value, self.clock.now())
            self._negative.pop(key, None)

    def peek(self, key: Key, allow_stale: bool = True) -> Optional[GetResult]:
        """Read *key* locally -- never touches the backend.

        The replica-read hook: when a primary shard's breaker is open
        (or the shard is down), the cluster asks the key's replicas for
        whatever copy they hold.  Returns a :class:`GetResult` with
        outcome ``hit`` (fresh) or ``stale`` (expired but within the
        serve-stale budget), or ``None`` when nothing servable is
        cached.  Does not promote in the eviction policy and records no
        metrics -- accounting belongs to the caller's request, not to
        this shard.
        """
        with self._lock:
            entry = self._store.get(key)
            if entry is None or key not in self.policy:
                return None
            now = self.clock.now()
            age = now - entry.fetched_at
            if self.config.ttl is None or age <= self.config.ttl:
                return GetResult(key=key, value=entry.value, outcome=HIT,
                                 coalesced=False, latency=0.0)
            if allow_stale and self.config.stale_ttl > 0:
                budget = (self.config.ttl or 0.0) + self.config.stale_ttl
                if age <= budget:
                    return GetResult(key=key, value=entry.value,
                                     outcome=STALE, coalesced=False,
                                     latency=0.0)
            return None

    def invalidate(self, key: Key) -> bool:
        """Drop any cached value for *key*; returns whether one existed.

        Used by ring rebalancing when a key's ownership moves away from
        this shard.  The policy's metadata entry is left to age out --
        with no stored value the next request is a miss either way.
        """
        with self._lock:
            self._negative.pop(key, None)
            return self._store.pop(key, None) is not None

    def cached_keys(self) -> List[Key]:
        """A consistent snapshot of the keys holding a stored value."""
        with self._lock:
            return [key for key in self._store if key in self.policy]

    @property
    def breaker_open(self) -> bool:
        """Whether the circuit breaker currently rejects fetches."""
        if self.breaker is None:
            return False
        return self.breaker.state == "open"

    def breaker_transitions(self) -> List[tuple]:
        """Breaker state transitions so far (empty without a breaker)."""
        if self.breaker is None:
            return []
        return list(self.breaker.transitions)

    # ------------------------------------------------------------------
    # Leader / follower paths
    # ------------------------------------------------------------------
    def _follow(self, key: Key, flight: _Flight, t0: float,
                span: Optional["ActiveSpan"] = None) -> GetResult:
        """Wait for the in-flight fetch and inherit its outcome."""
        if span is not None:
            # Cross-trace link: this request rode another request's
            # fetch; record whose so the trace viewer can join them.
            span.note(coalesced=True)
            if flight.leader_trace_id is not None:
                span.note(leader_trace=flight.leader_trace_id,
                          leader_span=flight.leader_span_id)
        if not flight.event.wait(self.FOLLOWER_WAIT):  # pragma: no cover
            return self._finish(key, None, ERROR, True, t0,
                                error="timed out waiting for the "
                                      "coalesced fetch", span=span)
        return self._finish(key, flight.value, flight.outcome, True, t0,
                            error=flight.error, span=span)

    def _lead(self, key: Key, flight: _Flight, t0: float,
              span: Optional["ActiveSpan"] = None) -> GetResult:
        """Run the backend fetch (with retries) and settle the flight."""
        retry = self.config.retry
        attempt = 1
        error: Optional[str] = None
        breaker_seen = (len(self.breaker.transitions)
                        if self.breaker is not None else 0)

        def annotate() -> None:
            """Fold what the fetch loop did into the request span."""
            if span is None:
                return
            if attempt > 1:
                span.note(retries=attempt - 1)
            if self.breaker is not None:
                fresh = self.breaker.transitions[breaker_seen:]
                if fresh:
                    span.mark("breaker-open")
                    span.note(breaker_transitions=[
                        f"{old}->{new}" for _ts, old, new in fresh])
        # Attempt 1 was authorised by the allow() that created the
        # flight (or the breaker is disabled).  It also earns the
        # retry budget its deposit: first tries fund future retries.
        if self.retry_budget is not None:
            self.retry_budget.record_request()
        allowed = True
        try:
            while True:
                if not allowed:
                    error = error or "circuit breaker open"
                    break
                fetch_span = (span.child("service.fetch", attempt=attempt)
                              if span is not None else None)
                fetched, error = self._attempt_fetch(key)
                if fetch_span is not None:
                    fetch_span.end(**({"error": error} if error else {}))
                if error is None:
                    self._settle(key, flight, MISS, fetched, None)
                    annotate()
                    return self._finish(key, fetched, MISS, False, t0,
                                        span=span)
                if attempt >= retry.max_attempts:
                    break
                # Retries spend whole tokens; an empty bucket means the
                # backend is already saturated with first tries, so the
                # retry is cut off rather than amplifying the outage.
                if (self.retry_budget is not None
                        and not self.retry_budget.try_spend()):
                    error = f"{error} [retry budget exhausted]"
                    if span is not None:
                        span.note(retry_budget_exhausted=True)
                    break
                self.clock.sleep(retry.backoff(attempt))
                attempt += 1
                allowed = (self.breaker.allow()
                           if self.breaker is not None else True)
            # All attempts failed (or the breaker cut the retries off):
            # degrade -- negative-cache the error, serve stale if allowed.
            with self._lock:
                now = self.clock.now()
                if self.config.negative_ttl > 0:
                    self._negative[key] = (
                        error, now + self.config.negative_ttl)
                    if span is not None:
                        span.note(negative_cached=True)
                stale = self._stale_entry(key, now)
            annotate()
            if stale is not None:
                if span is not None:
                    span.note(served_stale=True)
                self._settle(key, flight, STALE, stale.value, error)
                return self._finish(key, stale.value, STALE, False, t0,
                                    error=error, span=span)
            self._settle(key, flight, ERROR, None, error)
            return self._finish(key, None, ERROR, False, t0, error=error,
                                span=span)
        finally:
            # Whatever happened -- including an unexpected exception --
            # the flight must be released or followers deadlock.
            self._release(key, flight)
            if self.limiter is not None:
                now = self.clock.now()
                self.limiter.on_complete(now - t0, now)
                if self._limit_gauge is not None:
                    self._limit_gauge.set(self.limiter.limit)

    def _attempt_fetch(self, key: Key) -> tuple:
        """One backend fetch attempt; returns ``(value, error-or-None)``.

        On success the value is stored and admitted into the policy.
        """
        start = self.clock.now()
        try:
            value = self.backend.fetch(key)
            elapsed = self.clock.now() - start
            if (self.config.deadline is not None
                    and elapsed > self.config.deadline):
                raise BackendTimeout(
                    f"fetch of {key!r} took {elapsed:.3f}s with a "
                    f"{self.config.deadline}s deadline")
        except Exception as exc:
            self.metrics.record_fetch(ok=False)
            if self.breaker is not None:
                self.breaker.record_failure()
            return None, f"{type(exc).__name__}: {exc}"
        self.metrics.record_fetch(ok=True)
        if self.breaker is not None:
            self.breaker.record_success()
        with self._lock:
            # Admit first (evictions fire the reaper), then store the
            # value: the admitted key itself is never evicted by its
            # own admission.
            self.policy.request(key)
            self._store[key] = _Entry(value, self.clock.now())
            self._negative.pop(key, None)
        return value, None

    def _settle(self, key: Key, flight: _Flight, outcome: str,
                value: Any, error: Optional[str]) -> None:
        """Publish the flight's outcome (before waking followers)."""
        flight.outcome = outcome
        flight.value = value
        flight.error = error

    def _release(self, key: Key, flight: _Flight) -> None:
        with self._lock:
            if self._flights.get(key) is flight:
                del self._flights[key]
        flight.event.set()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _stale_entry(self, key: Key, now: float) -> Optional[_Entry]:
        """The bounded-staleness fallback entry, if serving it is allowed.

        Callers hold or have just released the service lock; reading
        the dict without it is safe under CPython, and staleness is
        re-derived from timestamps so a racing refresh only makes the
        answer fresher.
        """
        if self.config.stale_ttl <= 0:
            return None
        entry = self._store.get(key)
        if entry is None or key not in self.policy:
            return None
        budget = (self.config.ttl or 0.0) + self.config.stale_ttl
        if now - entry.fetched_at <= budget:
            return entry
        return None

    def _finish(self, key: Key, value: Any, outcome: str, coalesced: bool,
                t0: float, error: Optional[str] = None,
                span: Optional["ActiveSpan"] = None) -> GetResult:
        latency = self.clock.now() - t0
        took = self.metrics.record(
            outcome, latency, coalesced,
            exemplar=span.trace_id if span is not None else None)
        if span is not None:
            if took:
                # This trace is now referenced from a histogram bucket;
                # pin it so `repro trace show <id>` can resolve it.
                span.mark("exemplar")
            span.end(outcome=outcome,
                     **({"error": error} if error else {}))
        return GetResult(key=key, value=value, outcome=outcome,
                         coalesced=coalesced, latency=latency, error=error)


__all__ = [
    "ERROR",
    "HIT",
    "LATENCY_RESERVOIR_SIZE",
    "MISS",
    "OUTCOMES",
    "SHED",
    "STALE",
    "CacheService",
    "GetResult",
    "ServiceConfig",
    "ServiceMetrics",
]
