"""Per-backend circuit breaker with half-open probing.

When a backend is down, hammering it with every cache miss makes the
outage worse and ties up service threads in doomed fetches.  The
breaker is the standard three-state machine:

* **closed** -- requests flow; consecutive failures are counted.
* **open** -- after ``failure_threshold`` consecutive failures the
  breaker rejects fetches instantly (the service then degrades:
  serve-stale or fast error) for ``reset_timeout`` seconds.
* **half-open** -- after the cooldown, up to ``half_open_probes``
  trial fetches are let through; one success closes the breaker, one
  failure re-opens it (and restarts the cooldown).

All timing runs on the shared :class:`~repro.exec.clock.Clock`, so the
full open -> half-open -> closed cycle is testable on a virtual clock.
State transitions are recorded with timestamps for the metrics report.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.exec.clock import Clock, SystemClock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Numeric encoding of breaker states for the ``service_breaker_state``
#: gauge (0 = closed, 1 = half-open, 2 = open).
STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker tuning knobs (validated eagerly).

    * ``failure_threshold`` -- consecutive failures that trip the
      breaker.
    * ``reset_timeout`` -- seconds the breaker stays open before
      probing.
    * ``half_open_probes`` -- concurrent trial fetches allowed while
      half-open.
    """

    failure_threshold: int = 5
    reset_timeout: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, "
                f"got {self.failure_threshold}")
        if self.reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be > 0, got {self.reset_timeout}")
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, "
                f"got {self.half_open_probes}")


class CircuitBreaker:
    """Thread-safe three-state circuit breaker on an injectable clock."""

    def __init__(self, config: Optional[BreakerConfig] = None,
                 clock: Optional[Clock] = None) -> None:
        self.config = config or BreakerConfig()
        self.clock = clock or SystemClock()
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0        # consecutive failures while closed
        self._opened_at = 0.0
        self._probes = 0          # in-flight probes while half-open
        #: (timestamp, from-state, to-state), oldest first
        self.transitions: List[Tuple[float, str, str]] = []
        #: Called as ``on_transition(from_state, to_state, now)`` after
        #: every state change, while the breaker lock is held -- keep it
        #: cheap and re-entrancy-free (a gauge update, not a fetch).
        self.on_transition: Optional[Callable[[str, str, float], None]] = None

    # ------------------------------------------------------------------
    def _move(self, to_state: str, now: float) -> None:
        self.transitions.append((now, self._state, to_state))
        from_state, self._state = self._state, to_state
        if self.on_transition is not None:
            self.on_transition(from_state, to_state, now)

    def _refresh(self, now: float) -> None:
        """Open -> half-open once the cooldown has elapsed."""
        if (self._state == OPEN
                and now - self._opened_at >= self.config.reset_timeout):
            self._move(HALF_OPEN, now)
            self._probes = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, applying any due open -> half-open move."""
        with self._lock:
            self._refresh(self.clock.now())
            return self._state

    def allow(self) -> bool:
        """Whether a fetch may proceed right now.

        In the half-open state each ``allow()`` grants one of the
        configured probe slots; callers MUST report the probe's fate
        via :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            now = self.clock.now()
            self._refresh(now)
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._probes < self.config.half_open_probes:
                    self._probes += 1
                    return True
                return False
            return False

    def record_success(self) -> None:
        """A fetch succeeded: reset failures; close from half-open."""
        with self._lock:
            now = self.clock.now()
            self._refresh(now)
            self._failures = 0
            if self._state == HALF_OPEN:
                self._move(CLOSED, now)
                self._probes = 0

    def record_failure(self) -> None:
        """A fetch failed: count it; trip or re-open as configured."""
        with self._lock:
            now = self.clock.now()
            self._refresh(now)
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, new cooldown.
                self._move(OPEN, now)
                self._opened_at = now
                self._probes = 0
                self._failures = 0
                return
            if self._state == CLOSED:
                self._failures += 1
                if self._failures >= self.config.failure_threshold:
                    self._move(OPEN, now)
                    self._opened_at = now
                    self._failures = 0


__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "STATE_VALUES",
    "BreakerConfig",
    "CircuitBreaker",
]
