"""repro.service -- a fault-tolerant concurrent cache *service* layer.

The paper's operational argument (§2) is about serving systems: FIFO
family policies win under concurrent traffic because hits do not
serialise on a lock.  The simulator measures policies offline; this
package exercises them *online*, as a thread-safe read-through cache in
front of a failing backend:

* :mod:`repro.service.service` -- :class:`CacheService`: wraps any
  :class:`~repro.core.base.EvictionPolicy` with per-key request
  coalescing (single-flight), retry with exponential backoff and
  per-request deadlines, TTL freshness, and graceful degradation
  (serve-stale-on-error, negative caching, load shedding).
* :mod:`repro.service.breaker` -- per-backend circuit breaker with
  half-open probing.
* :mod:`repro.service.backend` -- the :class:`Backend` interface plus
  an in-memory origin and the fault-injected wrapper.
* :mod:`repro.service.faults` -- :class:`BackendFaultPlan`,
  deterministic backend fault injection on a virtual clock (the
  service-layer sibling of :class:`repro.exec.FaultPlan`).
* :mod:`repro.service.loadgen` -- closed-loop multi-threaded load
  harness with per-outcome metrics and latency percentiles, plus the
  open-loop wrapper :func:`~repro.service.loadgen.run_open_load`.
* :mod:`repro.service.overload` -- open-loop overload robustness:
  arrival schedules, bounded admission queue with deadline-aware drop,
  static/AIMD concurrency limiters, retry budget, and the service-cost
  model that charges promotion work on a serialised lock timeline.
"""

from repro.service.backend import (
    Backend,
    CallableBackend,
    FaultInjectedBackend,
    InMemoryBackend,
)
from repro.service.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.service.faults import (
    BackendError,
    BackendOutage,
    BackendTimeout,
    BackendFaultPlan,
    InjectedBackendError,
)
from repro.service.loadgen import (
    LoadInterrupted,
    LoadReport,
    run_load,
    run_open_load,
)
from repro.service.overload import (
    DROPPED,
    AdmissionQueue,
    AIMDLimiter,
    AimdConfig,
    OpenLoadReport,
    RetryBudget,
    RetryBudgetConfig,
    ServiceCostModel,
    StaticLimiter,
    run_open_loop,
)
from repro.service.service import (
    ERROR,
    HIT,
    MISS,
    SHED,
    STALE,
    CacheService,
    GetResult,
    ServiceConfig,
    ServiceMetrics,
)

__all__ = [
    "AIMDLimiter",
    "AdmissionQueue",
    "AimdConfig",
    "Backend",
    "BackendError",
    "BackendFaultPlan",
    "BackendOutage",
    "BackendTimeout",
    "BreakerConfig",
    "CLOSED",
    "CacheService",
    "CallableBackend",
    "CircuitBreaker",
    "DROPPED",
    "ERROR",
    "FaultInjectedBackend",
    "GetResult",
    "HALF_OPEN",
    "HIT",
    "InMemoryBackend",
    "InjectedBackendError",
    "LoadInterrupted",
    "LoadReport",
    "MISS",
    "OPEN",
    "OpenLoadReport",
    "RetryBudget",
    "RetryBudgetConfig",
    "SHED",
    "STALE",
    "ServiceConfig",
    "ServiceCostModel",
    "ServiceMetrics",
    "StaticLimiter",
    "run_load",
    "run_open_load",
    "run_open_loop",
]
