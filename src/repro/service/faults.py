"""Deterministic backend fault injection for the service layer.

The service-layer sibling of :class:`repro.exec.faults.FaultPlan`.  A
:class:`BackendFaultPlan` *declares* how a backend misbehaves -- "the
third fetch of key 7 errors", "every fetch takes 80 virtual
milliseconds", "the whole backend is down between t=10s and t=25s" --
and :class:`~repro.service.backend.FaultInjectedBackend` consults it on
every fetch.  Latencies and outage windows are expressed against a
:class:`~repro.exec.clock.Clock`, so under a
:class:`~repro.exec.clock.VirtualClock` every failure path of
:class:`~repro.service.service.CacheService` (retry, deadline, breaker
trip, serve-stale, negative cache) is exercised without one real sleep.

Fault kinds:

* ``ERROR`` -- the fetch raises :class:`InjectedBackendError`.
* ``TIMEOUT`` -- the fetch consumes the whole per-request deadline (or
  the scheduled latency if larger) and raises :class:`BackendTimeout`,
  modelling a hung origin cut off by the client's deadline.
* latency -- the fetch succeeds after advancing the clock, letting the
  service's own deadline enforcement trip deterministically.
* outage windows -- any fetch whose start time falls inside
  ``[start, end)`` raises :class:`BackendOutage` after the scheduled
  latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

ERROR = "error"
TIMEOUT = "timeout"
_KINDS = (ERROR, TIMEOUT)


class BackendError(RuntimeError):
    """Base class for backend fetch failures."""


class InjectedBackendError(BackendError):
    """The fault plan injected a fetch error."""


class BackendTimeout(BackendError):
    """A fetch exceeded its deadline (injected or enforced)."""


class BackendOutage(BackendError):
    """The fetch started during a scheduled backend outage window."""


@dataclass
class BackendFaultPlan:
    """A deterministic schedule of backend faults.

    Per-key faults are keyed by ``(key, call-or-None)`` where *call* is
    the 1-based index of the fetch *for that key*; ``None`` makes the
    fault fire on every call.  Outage windows are half-open intervals
    on the service clock and apply to every key.
    """

    #: (key, call-or-None) -> fault kind
    failures: Dict[Tuple[object, Optional[int]], str] = field(
        default_factory=dict)
    #: (key, call-or-None) -> virtual seconds the fetch takes
    latencies: Dict[Tuple[object, Optional[int]], float] = field(
        default_factory=dict)
    #: [start, end) windows during which every fetch fails
    outages: List[Tuple[float, float]] = field(default_factory=list)
    #: latency applied when no per-key latency is scheduled
    default_latency: float = 0.0

    # -- builders ------------------------------------------------------
    def fail(self, key, call: Optional[int] = None,
             kind: str = ERROR) -> "BackendFaultPlan":
        """Make fetches of *key* fail on *call* (``None`` = every call)."""
        if kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; use one of {_KINDS}")
        if call is not None and call < 1:
            raise ValueError(f"call must be >= 1 or None, got {call}")
        self.failures[(key, call)] = kind
        return self

    def latency(self, key, seconds: float,
                call: Optional[int] = None) -> "BackendFaultPlan":
        """Give fetches of *key* a virtual duration of *seconds*."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        if call is not None and call < 1:
            raise ValueError(f"call must be >= 1 or None, got {call}")
        self.latencies[(key, call)] = seconds
        return self

    def outage(self, start: float, end: float) -> "BackendFaultPlan":
        """Fail every fetch whose start time lies in ``[start, end)``."""
        if end <= start:
            raise ValueError(
                f"outage window must have end > start, got [{start}, {end})")
        self.outages.append((float(start), float(end)))
        return self

    def base_latency(self, seconds: float) -> "BackendFaultPlan":
        """Set the latency applied when no per-key latency matches."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self.default_latency = float(seconds)
        return self

    # -- queries -------------------------------------------------------
    def fault_for(self, key, call: int) -> Optional[str]:
        """The fault kind scheduled for (key, call), if any."""
        kind = self.failures.get((key, call))
        if kind is None:
            kind = self.failures.get((key, None))
        return kind

    def latency_for(self, key, call: int) -> float:
        """The virtual duration scheduled for (key, call)."""
        seconds = self.latencies.get((key, call))
        if seconds is None:
            seconds = self.latencies.get((key, None), self.default_latency)
        return seconds

    def in_outage(self, now: float) -> bool:
        """Whether *now* falls inside a scheduled outage window."""
        return any(start <= now < end for start, end in self.outages)


__all__ = [
    "ERROR",
    "TIMEOUT",
    "BackendError",
    "BackendFaultPlan",
    "BackendOutage",
    "BackendTimeout",
    "InjectedBackendError",
]
