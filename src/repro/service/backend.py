"""Backend (origin) abstraction for the cache service.

A :class:`Backend` is whatever sits behind the cache: a database, a
storage cluster, an upstream HTTP service.  The service only needs one
operation -- ``fetch(key) -> value`` -- which either returns the
authoritative value or raises.

:class:`InMemoryBackend` is the deterministic origin used by tests,
examples and the load generator; :class:`FaultInjectedBackend` wraps
any backend with a :class:`~repro.service.faults.BackendFaultPlan` so
every failure mode is reproducible on a virtual clock.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Hashable, Optional

from repro.exec.clock import Clock, SystemClock
from repro.service.faults import (
    ERROR,
    TIMEOUT,
    BackendFaultPlan,
    BackendOutage,
    BackendTimeout,
    InjectedBackendError,
)

Key = Hashable


class Backend(ABC):
    """The origin the cache reads through to."""

    @abstractmethod
    def fetch(self, key: Key) -> Any:
        """Return the authoritative value for *key*, or raise."""


class InMemoryBackend(Backend):
    """Deterministic in-memory origin with per-key fetch accounting.

    Values come from *value_fn* (default ``"value:<key>"``), so any
    key is fetchable without pre-seeding.  ``fetch_count(key)`` and
    ``total_fetches`` are thread-safe, which is what the coalescing
    tests assert against: a miss storm on one key must reach the
    origin exactly once.
    """

    def __init__(self, value_fn: Optional[Callable[[Key], Any]] = None
                 ) -> None:
        self._value_fn = value_fn or (lambda key: f"value:{key}")
        self._counts: Dict[Key, int] = {}
        self._lock = threading.Lock()

    def fetch(self, key: Key) -> Any:
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1
        return self._value_fn(key)

    def fetch_count(self, key: Key) -> int:
        """How many times *key* has been fetched."""
        with self._lock:
            return self._counts.get(key, 0)

    @property
    def total_fetches(self) -> int:
        """Total fetches across all keys."""
        with self._lock:
            return sum(self._counts.values())


class CallableBackend(Backend):
    """Adapt a plain callable (or a blocking test stub) to a Backend."""

    def __init__(self, fn: Callable[[Key], Any]) -> None:
        self._fn = fn

    def fetch(self, key: Key) -> Any:
        return self._fn(key)


class FaultInjectedBackend(Backend):
    """Wrap a backend with a deterministic fault schedule.

    On every fetch the wrapper (in order):

    1. looks up the 1-based call index for *key* (thread-safe);
    2. sleeps the scheduled latency on the injected clock -- a virtual
       advance under :class:`~repro.exec.clock.VirtualClock`;
    3. raises :class:`BackendOutage` if the fetch *started* inside an
       outage window;
    4. raises the scheduled per-key fault, if any
       (:class:`InjectedBackendError` or :class:`BackendTimeout`);
    5. otherwise delegates to the wrapped backend.
    """

    def __init__(self, inner: Backend, plan: BackendFaultPlan,
                 clock: Optional[Clock] = None) -> None:
        self.inner = inner
        self.plan = plan
        self.clock = clock or SystemClock()
        self._calls: Dict[Key, int] = {}
        self._lock = threading.Lock()

    def fetch(self, key: Key) -> Any:
        with self._lock:
            call = self._calls.get(key, 0) + 1
            self._calls[key] = call
        started = self.clock.now()
        latency = self.plan.latency_for(key, call)
        if latency:
            self.clock.sleep(latency)
        if self.plan.in_outage(started):
            raise BackendOutage(
                f"backend outage at t={started:.3f} (fetch of {key!r})")
        kind = self.plan.fault_for(key, call)
        if kind == ERROR:
            raise InjectedBackendError(
                f"injected backend error for {key!r} (call {call})")
        if kind == TIMEOUT:
            raise BackendTimeout(
                f"injected backend timeout for {key!r} (call {call})")
        return self.inner.fetch(key)

    def calls(self, key: Key) -> int:
        """How many fetches of *key* have been attempted."""
        with self._lock:
            return self._calls.get(key, 0)


__all__ = [
    "Backend",
    "CallableBackend",
    "FaultInjectedBackend",
    "InMemoryBackend",
]
