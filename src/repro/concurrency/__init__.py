"""Multi-threaded scalability modelling (the paper's §1-2 argument)."""

from repro.concurrency.model import (
    PolicyProfile,
    ScalingPoint,
    profile_policy,
    scaling_table,
    simulate_scaling,
)

__all__ = [
    "PolicyProfile",
    "ScalingPoint",
    "profile_policy",
    "scaling_table",
    "simulate_scaling",
]
