"""Lock-contention model of multi-threaded cache throughput (§1-2).

The paper's operational argument is about *scalability*: every LRU hit
updates six pointers under a global lock, so the list head serialises
all threads; FIFO-family hits touch at most one flag without locking,
so they scale.  A single-threaded Python simulator cannot measure this
directly, so this module models it as a discrete-event simulation:

* ``num_threads`` independent request streams;
* every request costs ``base_work`` time units of parallel work
  (hashing, lookup);
* operations that mutate shared structures -- promotions on the hit
  path, evictions + insertions on the miss path -- must hold a global
  lock for ``lock_work`` units each;
* per-object metadata updates without reordering (setting a CLOCK
  bit) are lock-free and cost ``flag_work``.

The per-policy inputs (hit ratio, promotions per hit, evictions per
miss) come from a real single-threaded simulation of the policy on a
workload, so the model's *policy-dependent* parameters are measured,
not assumed.  The output is the classic saturation curve: LRU
flattens at ``1 / lock_time_per_request`` while FIFO-family
throughput keeps rising with the thread count.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.base import EvictionPolicy
from repro.sim.simulator import simulate


@dataclass(frozen=True)
class PolicyProfile:
    """Measured per-request behaviour of a policy on a workload."""

    name: str
    hit_ratio: float
    promotions_per_request: float  # locked reorderings (hit-path + scans)

    @property
    def miss_ratio(self) -> float:
        """Fraction of requests that miss."""
        return 1.0 - self.hit_ratio


def profile_policy(policy: EvictionPolicy, keys: Sequence[int]
                   ) -> PolicyProfile:
    """Measure a policy's hit ratio and locked-work rate on *keys*."""
    simulate(policy, list(keys))
    stats = policy.stats
    return PolicyProfile(
        name=policy.name,
        hit_ratio=stats.hit_ratio,
        promotions_per_request=policy.promotion_count / max(1, stats.requests),
    )


@dataclass(frozen=True)
class ScalingPoint:
    """Simulated throughput at one thread count."""

    threads: int
    throughput: float        # requests per time unit
    lock_utilisation: float  # fraction of wall time the lock was held


def simulate_scaling(
    profile: PolicyProfile,
    thread_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    requests_per_thread: int = 2000,
    base_work: float = 1.0,
    lock_work: float = 0.6,
    flag_work: float = 0.05,
) -> List[ScalingPoint]:
    """Discrete-event simulation of *profile* under contention.

    Each thread alternates parallel work and (when its request needs
    one) a critical section; the lock is granted FIFO.  Deterministic:
    each thread's i-th request is a hit iff ``(i * threads + t)``
    falls below the hit ratio's share (a stride pattern that matches
    the measured hit ratio exactly in expectation).
    """
    points = []
    for threads in thread_counts:
        if threads < 1:
            raise ValueError(f"thread counts must be >= 1, got {threads}")
        total_requests = threads * requests_per_thread
        # Event loop state: per-thread next-free time, plus the lock's
        # next-free time.  Threads request the lock in the order they
        # arrive at it (FIFO grant), which a heap of arrival times
        # models exactly.
        lock_free_at = 0.0
        lock_busy = 0.0
        ready: List = [(0.0, t, 0) for t in range(threads)]
        heapq.heapify(ready)
        finish_time = 0.0
        hit_cut = profile.hit_ratio
        promo_per_hit = (profile.promotions_per_request
                         / max(profile.hit_ratio, 1e-9))
        while ready:
            now, thread, index = heapq.heappop(ready)
            # Parallel portion: lookup work, always.
            now += base_work
            position = (index * threads + thread) % total_requests
            is_hit = (position / total_requests) < hit_cut
            if is_hit:
                # Lock-free flag update (LP family) happens regardless.
                now += flag_work
                # A fraction of hits take the lock to reorder.
                locked = lock_work * min(promo_per_hit, 4.0)
            else:
                # Miss path: eviction + insertion under the lock for
                # every policy (allocation is serialised in practice).
                locked = lock_work
            if locked > 0.0:
                start = max(now, lock_free_at)
                lock_free_at = start + locked
                lock_busy += locked
                now = lock_free_at
            finish_time = max(finish_time, now)
            if index + 1 < requests_per_thread:
                heapq.heappush(ready, (now, thread, index + 1))
        points.append(ScalingPoint(
            threads=threads,
            throughput=total_requests / finish_time,
            lock_utilisation=min(1.0, lock_busy / finish_time),
        ))
    return points


def scaling_table(
    profiles: Sequence[PolicyProfile],
    thread_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    **model_params,
) -> Dict[str, List[ScalingPoint]]:
    """Scaling curves for several profiled policies."""
    return {
        profile.name: simulate_scaling(profile, thread_counts,
                                       **model_params)
        for profile in profiles
    }


__all__ = [
    "PolicyProfile",
    "profile_policy",
    "ScalingPoint",
    "simulate_scaling",
    "scaling_table",
]
