"""Command-line interface.

Subcommands::

    repro list                      # the policy zoo, by category
    repro simulate ...              # one policy x one trace
    repro hierarchy ...             # DRAM->flash->backend tiered replay
    repro corpus ...                # materialise the synthetic corpus
    repro experiment <id> ...       # regenerate a paper table/figure
    repro loadgen ...               # hammer the cache service layer
    repro metrics ...               # render an observability snapshot
    repro timeseries ...            # windowed curves as sparklines/CSV
    repro trace ...                 # list/show/export kept request traces
    repro diff RUN_A RUN_B          # regression-diff two run journals

Examples::

    repro simulate --policy QD-LP-FIFO --family cdn --size 0.1
    repro simulate --policy LRU --trace mytrace.csv --size 0.01
    repro hierarchy --family cdn --policy qd-lp-fifo --admission ghost
    repro corpus --out traces/ --format binary --traces-per-family 2
    repro experiment fig5 --tier quick
    repro experiment fig5 --tier full --checkpoint --retries 3
    repro experiment fig5 --tier full --resume 20260806-101500-ab12cd
    repro experiment outage --tier quick
    repro loadgen --policy QD-LP-FIFO --threads 8 --requests 20000
    repro metrics --run RUN_ID --select 'sweep_*' --labels path=fast
    repro timeseries --run RUN_ID --select 'sim_misses*'
    repro loadgen --open-loop --trace-sample 0.05 --requests 20000
    repro trace list results/loadgen_open_reqtrace.jsonl --slowest 10
    repro trace show results/loadgen_open_reqtrace.jsonl ab12cd
    repro diff baseline-run fresh-run --miss-ratio-tolerance 0.05

Exit codes::

    0    success
    1    runtime failure (unexpected error, a sweep lost cells, or
         `repro diff` found a regression beyond tolerance)
    2    user error (bad arguments, unknown policy/family, corrupt or
         missing trace file, unknown resume run id)
    130  interrupted (Ctrl-C); checkpointed sweeps stay resumable
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments.common import FULL, QUICK, TINY

_TIERS = {"tiny": TINY, "quick": QUICK, "full": FULL}

EXIT_OK = 0
EXIT_RUNTIME = 1
EXIT_USAGE = 2
EXIT_INTERRUPT = 130

#: experiment ids whose matrix goes through the fault-tolerant runner
_SWEEP_IDS = ("fig2", "fig5", "extensions")


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.policies.registry import _SPECS, sized_names

    by_category: dict = {}
    for spec in _SPECS:
        by_category.setdefault(spec.category, []).append(spec.name)
    for category in ("baseline", "lp-fifo", "sota", "qd", "offline",
                     "extension"):
        print(f"{category}:")
        for name in by_category.get(category, []):
            print(f"  {name}")
    print("sized (byte-budgeted; `repro hierarchy`, tier configs):")
    for name in sized_names():
        print(f"  {name}")
    return EXIT_OK


def _load_trace(args: argparse.Namespace):
    from repro.traces.corpus import FAMILY_BY_NAME, build_trace
    from repro.traces.io import read_binary, read_csv

    if args.trace:
        path = Path(args.trace)
        if not path.exists():
            print(f"error: trace file {path} not found", file=sys.stderr)
            return None
        try:
            if path.suffix in (".bin", ".rptr"):
                return read_binary(path)
            return read_csv(path)
        except ValueError as exc:
            print(f"error: cannot load trace: {exc}", file=sys.stderr)
            return None
    family = FAMILY_BY_NAME.get(args.family)
    if family is None:
        known = ", ".join(sorted(FAMILY_BY_NAME))
        print(f"error: unknown family {args.family!r}; known: {known}",
              file=sys.stderr)
        return None
    return build_trace(family, args.index, args.scale, args.seed)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.policies.registry import make, resolve
    from repro.sim.simulator import simulate

    trace = _load_trace(args)
    if trace is None:
        return EXIT_USAGE
    try:
        spec = resolve(args.policy)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE
    capacity = trace.cache_size(args.size)
    capacity = max(capacity, spec.min_capacity)
    policy = make(spec.name, capacity)
    result = simulate(policy, trace)
    print(f"trace       : {trace.name} ({trace.num_requests} requests, "
          f"{trace.num_unique} objects)")
    print(f"policy      : {spec.name}")
    print(f"capacity    : {capacity} objects "
          f"({args.size:.3%} of unique objects)")
    print(f"miss ratio  : {result.miss_ratio:.4f}")
    print(f"hits/misses : {result.hits}/{result.misses}")
    return EXIT_OK


def _cmd_hierarchy(args: argparse.Namespace) -> int:
    from repro.hierarchy import dram_flash_config, simulate_hierarchy
    from repro.sized.workloads import attach_sizes, unique_bytes

    trace = _load_trace(args)
    if trace is None:
        return EXIT_USAGE
    sized = attach_sizes(trace, args.size_dist, seed=args.size_seed)
    footprint = unique_bytes(sized)
    dram_bytes = args.dram_bytes or max(
        4096, round(footprint * args.dram_fraction))
    flash_bytes = args.flash_bytes or max(
        4096, round(footprint * args.flash_fraction))
    try:
        config = dram_flash_config(
            dram_bytes=dram_bytes, flash_bytes=flash_bytes,
            dram_policy=args.policy, flash_policy=args.flash_policy,
            flash_admission=args.admission, ttl=args.ttl,
            promote_on_hit=not args.no_promote)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE
    result = simulate_hierarchy(config, sized)
    print(f"trace     : {trace.name} ({trace.num_requests} requests, "
          f"{footprint} footprint bytes)")
    print(f"dram      : {dram_bytes} bytes, "
          f"{config.tiers[0].policy}")
    print(f"flash     : {flash_bytes} bytes, "
          f"{config.tiers[1].policy}, admission={args.admission}")
    if args.ttl:
        print(f"ttl       : {args.ttl} requests")
    print(result.render())
    return EXIT_OK


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.traces.corpus import build_corpus
    from repro.traces.io import write_binary, write_csv
    from repro.traces.stats import compute_stats

    corpus = build_corpus(scale=args.scale,
                          traces_per_family=args.traces_per_family,
                          seed=args.seed)
    out = Path(args.out) if args.out else None
    if out:
        out.mkdir(parents=True, exist_ok=True)
    for trace in corpus:
        stats = compute_stats(trace)
        print(f"{trace.name:22s} {trace.group:5s} "
              f"req={stats.num_requests:8d} obj={stats.num_objects:8d} "
              f"one-hit={stats.one_hit_wonder_ratio:5.1%} "
              f"meanfreq={stats.mean_frequency:6.1f}")
        if out:
            if args.format == "binary":
                write_binary(trace, out / f"{trace.name}.bin")
            else:
                write_csv(trace, out / f"{trace.name}.csv")
    if out:
        print(f"\nwrote {len(corpus)} traces to {out}/")
    return EXIT_OK


def _exec_options(args: argparse.Namespace):
    """Build ExecOptions from the experiment subcommand's flags."""
    from repro.exec import ExecOptions, RetryPolicy

    retry = RetryPolicy(
        max_attempts=args.retries,
        base_delay=args.retry_delay,
        timeout=args.task_timeout,
    )
    return ExecOptions(
        retry=retry,
        resume=args.resume,
        run_id=args.run_id,
        checkpoint=args.checkpoint,
        runs_dir=Path(args.runs_dir) if args.runs_dir else None,
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ablations, extensions, fig2, fig3, fig5, outage, outage_cluster,
        overload_study, table1, throughput, tiered)

    config = _TIERS[args.tier]
    try:
        options = _exec_options(args)
    except ValueError as exc:
        # invalid --retries/--retry-delay/--task-timeout combination
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.id not in _SWEEP_IDS and (args.resume or args.checkpoint
                                      or args.run_id):
        print(f"note: experiment {args.id!r} does not run a sweep matrix; "
              f"--resume/--checkpoint/--run-id are ignored",
              file=sys.stderr)
    runners = {
        "outage": lambda: outage.run(config),
        "outage-cluster": lambda: outage_cluster.run(config),
        "overload": lambda: overload_study.run(config),
        "table1": lambda: table1.run(config),
        "fig2": lambda: fig2.run(config, workers=args.workers,
                                 options=options),
        "fig3": lambda: fig3.run(scale=config.scale),
        "table2": lambda: fig3.run(scale=config.scale),
        "fig5": lambda: fig5.run(config, workers=args.workers,
                                 options=options),
        "throughput": lambda: throughput.run(),
        "ablation-probation": lambda: ablations.run_probation_sweep(config),
        "ablation-ghost": lambda: ablations.run_ghost_sweep(config),
        "ablation-clockbits": lambda: ablations.run_clock_bits_sweep(config),
        "extensions": lambda: extensions.run(config, workers=args.workers,
                                             options=options),
        "tiered": lambda: tiered.run(config),
    }
    try:
        result = runners[args.id]()
    except FileNotFoundError as exc:
        # unknown --resume run id: user error, not a runtime crash
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(result.render())
    failures = getattr(result, "failures", None)
    if failures:
        # partial results were rendered; signal the loss to scripts
        return EXIT_RUNTIME
    return EXIT_OK


def _make_request_tracer(args: argparse.Namespace, registry, clock=None):
    """Build the loadgen's :class:`RequestTracer` (None when not asked).

    ``--trace-sample`` opts in; the tracer shares the run's seed, clock
    and metrics registry so kept traces, exemplars and the
    ``reqtrace_*`` counters all line up.
    """
    if args.trace_sample is None:
        return None
    from repro.obs import RequestTracer

    return RequestTracer(sample=args.trace_sample, seed=args.seed,
                         clock=clock, registry=registry)


def _write_trace_outputs(tracer, args: argparse.Namespace,
                         stem: str) -> None:
    """Flush kept traces to JSONL + validated Chrome trace and say where."""
    from repro.experiments.common import results_dir

    out = (Path(args.trace_out) if args.trace_out
           else results_dir() / f"{stem}_reqtrace.jsonl")
    tracer.write_jsonl(out)
    chrome = out.with_suffix(".chrome.json")
    tracer.write_chrome_trace(chrome)
    stats = tracer.summary()
    print(f"request traces : {out} (kept {stats['kept']} of "
          f"{stats['sampled']} sampled / {stats['requests']} requests; "
          f"render with `repro trace list {out}`)\n"
          f"chrome trace   : {chrome}", file=sys.stderr)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.experiments.common import results_dir, write_result
    from repro.obs import MetricsRegistry, write_jsonl
    from repro.policies.registry import make, resolve
    from repro.service import (
        CacheService,
        InMemoryBackend,
        LoadInterrupted,
        ServiceConfig,
        run_load,
    )
    from repro.traces.synthetic import zipf_trace

    try:
        spec = resolve(args.policy)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE
    registry = MetricsRegistry()
    if args.open_loop:
        return _run_open_loadgen(args, spec, registry)
    if args.shards:
        return _run_cluster_loadgen(args, spec, registry)
    try:
        config = ServiceConfig(ttl=args.ttl, max_inflight=args.max_inflight)
        capacity = max(spec.min_capacity, int(args.objects * args.size))
        tracer = _make_request_tracer(args, registry)
        service = CacheService(make(spec.name, capacity),
                               InMemoryBackend(), config,
                               registry=registry, tracer=tracer)
        if args.requests < 1 or args.threads < 1:
            raise ValueError("--requests and --threads must be >= 1")
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    rng = np.random.default_rng(args.seed)
    keys = zipf_trace(args.objects, args.requests, args.alpha, rng).tolist()
    try:
        report = run_load(service, keys, threads=args.threads)
    except LoadInterrupted as exc:
        # Exit-code contract from PR 1: Ctrl-C means 130 -- but flush
        # the partial metrics first so the run wasn't for nothing.
        path = write_result("loadgen_partial", exc.report.render())
        print(f"interrupted; partial metrics written to {path}",
              file=sys.stderr)
        return EXIT_INTERRUPT
    report.check_accounting()
    print(report.render())
    write_result("loadgen", report.render())
    metrics_path = results_dir() / "loadgen_metrics.jsonl"
    write_jsonl(registry, metrics_path)
    print(f"metrics snapshot: {metrics_path} "
          f"(render with `repro metrics {metrics_path}`)", file=sys.stderr)
    if tracer is not None:
        _write_trace_outputs(tracer, args, "loadgen")
    return EXIT_OK


def _run_open_loadgen(args: argparse.Namespace, spec, registry) -> int:
    """``repro loadgen --open-loop``: arrival-driven overload mode.

    Demand comes from an arrival schedule on a deterministic
    VirtualClock instead of closed-loop worker threads, so offered
    load can exceed capacity: requests queue in a bounded admission
    queue, dispatch under a static or AIMD-adaptive concurrency limit,
    and are dropped (deadline/displacement) or shed (queue full) when
    the system cannot keep up.  Promotion work is charged on a
    serialised lock timeline via the service-cost model, which is what
    makes the hit-ratio-vs-throughput trade-off measurable.
    """
    import numpy as np

    from repro.experiments.common import results_dir, write_result
    from repro.exec.clock import VirtualClock
    from repro.exec.retry import RetryPolicy
    from repro.obs import TimeSeriesRecorder, write_jsonl
    from repro.policies.registry import make
    from repro.service import (
        CacheService,
        InMemoryBackend,
        ServiceConfig,
        run_open_load,
    )
    from repro.service.overload import (
        AdmissionQueue,
        AimdConfig,
        RetryBudgetConfig,
        ServiceCostModel,
        make_limiter,
        make_schedule,
    )
    from repro.traces.synthetic import zipf_trace

    try:
        if args.requests < 1:
            raise ValueError(f"--requests must be >= 1, got {args.requests}")
        if args.shards:
            raise ValueError("--open-loop does not combine with --shards "
                             "yet; use run_open_cluster_load from Python")
        schedule = make_schedule(
            args.arrival, rate=args.rate, duration=args.duration,
            peak_rate=args.peak_rate, burst=args.burst, seed=args.seed)
        queue = AdmissionQueue(capacity=args.queue,
                               policy=args.queue_policy,
                               deadline=args.queue_deadline)
        limiter = make_limiter(
            args.limiter, static_limit=args.max_inflight or 8,
            aimd=AimdConfig(target_delay=args.target_delay))
        cost = ServiceCostModel(promotion_cost=args.promotion_cost)
        retry_budget = (RetryBudgetConfig(deposit=args.retry_budget)
                        if args.retry_budget is not None else None)
        config = ServiceConfig(
            ttl=args.ttl,
            retry=(RetryPolicy(max_attempts=3, base_delay=0.01)
                   if retry_budget is not None else ServiceConfig().retry),
            retry_budget=retry_budget,
        )
        clock = VirtualClock()
        capacity = max(spec.min_capacity, int(args.objects * args.size))
        tracer = _make_request_tracer(args, registry, clock=clock)
        service = CacheService(make(spec.name, capacity),
                               InMemoryBackend(), config, clock=clock,
                               registry=registry, tracer=tracer)
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    rng = np.random.default_rng(args.seed)
    keys = zipf_trace(args.objects, args.requests, args.alpha, rng).tolist()
    recorder = TimeSeriesRecorder(registry, cadence=1.0)
    report = run_open_load(service, keys, schedule, queue=queue,
                           limiter=limiter, cost=cost,
                           timeseries=recorder, registry=registry,
                           tracer=tracer)
    report.check_conservation()
    print(report.render())
    write_result("loadgen_open", report.render())
    metrics_path = results_dir() / "loadgen_open_metrics.jsonl"
    write_jsonl(registry, metrics_path)
    series_path = results_dir() / "loadgen_open_timeseries.jsonl"
    recorder.write_jsonl(series_path)
    print(f"metrics snapshot: {metrics_path}\n"
          f"windowed series : {series_path} "
          f"(render with `repro timeseries {series_path}`)",
          file=sys.stderr)
    if tracer is not None:
        _write_trace_outputs(tracer, args, "loadgen_open")
    return EXIT_OK


def _run_cluster_loadgen(args: argparse.Namespace, spec,
                         registry) -> int:
    """``repro loadgen --shards N``: drive a sharded cluster instead.

    With ``--kill-shard`` the run switches to single-threaded
    tick-paced virtual time (the only mode where a kill window is
    deterministic) and takes the named shard down for the middle
    [0.4, 0.7) of the run, mirroring the X3-cluster experiment.
    """
    from repro.experiments.common import results_dir, write_result
    from repro.exec.clock import VirtualClock
    from repro.obs import write_jsonl
    from repro.policies.registry import make
    from repro.service import LoadInterrupted
    from repro.cluster import (
        ClusterConfig,
        build_cluster,
        make_cluster_workload,
        run_cluster_load,
    )

    try:
        if args.requests < 1 or args.threads < 1:
            raise ValueError("--requests and --threads must be >= 1")
        if args.shards < 1:
            raise ValueError(f"--shards must be >= 1, got {args.shards}")
        if args.kill_shard and args.shards < 2:
            raise ValueError("--kill-shard needs at least 2 shards")
        capacity = max(spec.min_capacity,
                       int(args.objects * args.size / args.shards))
        config = ClusterConfig(replicas=args.replicas)
        kill = args.kill_shard
        tick = args.tick if args.tick is not None else (0.01 if kill else 0.0)
        threads = 1 if kill else args.threads
        clock = VirtualClock() if tick else None
        tracer = _make_request_tracer(args, registry, clock=clock)
        cluster = build_cluster(
            lambda: make(spec.name, capacity),
            shards=args.shards,
            config=config,
            clock=clock,
            registry=registry,
            tracer=tracer,
        )
        checkpoints = None
        if kill:
            if kill not in cluster.shards:
                raise ValueError(
                    f"--kill-shard must be one of "
                    f"{', '.join(sorted(cluster.shards))}, got {kill!r}")
            duration = args.requests * tick
            cluster.kill(kill, 0.4 * duration, 0.7 * duration)
            checkpoints = [0.4 * duration, 0.7 * duration]
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    workload = make_cluster_workload(args.requests, universe=args.objects,
                                     alpha=max(args.alpha, 0.01),
                                     seed=args.seed)
    try:
        report = run_cluster_load(cluster, workload.keys, threads=threads,
                                  tick=tick, checkpoints=checkpoints)
    except LoadInterrupted as exc:
        path = write_result("loadgen_cluster_partial", exc.report.render())
        print(f"interrupted; partial metrics written to {path}",
              file=sys.stderr)
        return EXIT_INTERRUPT
    report.check_accounting()
    print(report.render())
    write_result("loadgen_cluster", report.render())
    metrics_path = results_dir() / "loadgen_cluster_metrics.jsonl"
    write_jsonl(registry, metrics_path)
    print(f"metrics snapshot: {metrics_path} "
          f"(render with `repro metrics {metrics_path} "
          f"--labels shard=*`)", file=sys.stderr)
    if tracer is not None:
        _write_trace_outputs(tracer, args, "loadgen_cluster")
    return EXIT_OK


def _parse_label_filters(pairs) -> Optional[List[tuple]]:
    """``["k=v", ...]`` -> ``[(k, v), ...]``; None on a malformed pair."""
    filters = []
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            return None
        filters.append((key, value))
    return filters


def _filter_metric_rows(rows, select: Optional[str],
                        label_filters: List[tuple]) -> List[dict]:
    """Apply ``--select`` / ``--labels`` to snapshot rows."""
    from fnmatch import fnmatch

    if select:
        rows = [row for row in rows
                if fnmatch(row.get("name", ""), select)]
    for key, value in label_filters:
        # Values are fnmatch globs, so `--labels shard=*` selects every
        # per-shard row (rows without the label never match).
        rows = [row for row in rows
                if key in (row.get("labels") or {})
                and fnmatch(str(row["labels"][key]), value)]
    return rows


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import (
        read_jsonl,
        render_metrics_table,
        to_jsonl,
        to_prometheus,
    )

    if bool(args.source) == bool(args.run):
        print("error: pass a metrics .jsonl file or --run RUN_ID "
              "(exactly one)", file=sys.stderr)
        return EXIT_USAGE
    label_filters = _parse_label_filters(args.labels)
    if label_filters is None:
        print("error: --labels expects k=v pairs", file=sys.stderr)
        return EXIT_USAGE
    if args.run:
        from repro.exec.journal import Journal

        try:
            # JournalState keeps only the *last* metrics line, so a
            # resumed run that journalled several snapshots renders
            # deterministically: latest wins.
            state = Journal.open(args.run, root=args.runs_dir).load()
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if state.metrics is None:
            print(f"error: run {args.run!r} recorded no metrics snapshot "
                  f"(sweeps record one when run with SimOptions(metrics=...))",
                  file=sys.stderr)
            return EXIT_RUNTIME
        rows, title = state.metrics, f"run {args.run}"
    else:
        try:
            rows = read_jsonl(args.source)
        except FileNotFoundError:
            print(f"error: no such file: {args.source}", file=sys.stderr)
            return EXIT_USAGE
        title = args.source
    rows = _filter_metric_rows(rows, args.select, label_filters)
    if not rows:
        print("error: no metric rows found", file=sys.stderr)
        return EXIT_RUNTIME
    if args.format == "prom":
        print(to_prometheus(rows), end="")
    elif args.format == "jsonl":
        print(to_jsonl(rows), end="")
    else:
        print(render_metrics_table(rows, title=title))
    return EXIT_OK


def _cmd_timeseries(args: argparse.Namespace) -> int:
    from fnmatch import fnmatch

    from repro.obs import (
        read_timeseries_jsonl,
        render_csv,
        render_sparklines,
        series_from_rows,
    )

    if bool(args.source) == bool(args.run):
        print("error: pass a timeseries .jsonl file or --run RUN_ID "
              "(exactly one)", file=sys.stderr)
        return EXIT_USAGE
    if args.run:
        from repro.exec.journal import Journal

        try:
            state = Journal.open(args.run, root=args.runs_dir).load()
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if state.timeseries is None:
            print(f"error: run {args.run!r} recorded no time series "
                  f"(sweeps record one when run with "
                  f"SimOptions(timeseries=...))", file=sys.stderr)
            return EXIT_RUNTIME
        rows = state.timeseries
    else:
        try:
            rows = read_timeseries_jsonl(args.source)
        except FileNotFoundError:
            print(f"error: no such file: {args.source}", file=sys.stderr)
            return EXIT_USAGE
    series_map = series_from_rows(rows)
    if args.select:
        series_map = {key: points for key, points in series_map.items()
                      if fnmatch(key, args.select)}
    if not series_map:
        print("error: no matching series", file=sys.stderr)
        return EXIT_RUNTIME
    if args.format == "csv":
        print(render_csv(series_map), end="")
    else:
        print(render_sparklines(series_map, width=args.width))
    return EXIT_OK


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace list|show|export`` over a kept-trace JSONL file."""
    import json

    from repro.obs import (
        chrome_from_rows,
        read_trace_jsonl,
        render_trace_list,
        render_trace_tree,
        validate_chrome_trace,
    )

    try:
        rows = read_trace_jsonl(args.source)
    except FileNotFoundError:
        print(f"error: no such file: {args.source}", file=sys.stderr)
        return EXIT_USAGE
    if args.action == "list":
        print(render_trace_list(rows, slowest=args.slowest,
                                outcome=args.outcome))
        return EXIT_OK
    if args.action == "show":
        # Prefix match, the way `git show` treats abbreviated hashes --
        # `repro metrics` exemplar lines print full 12-hex ids, but a
        # unique prefix is enough.
        if not args.trace_id:
            print("error: empty trace id", file=sys.stderr)
            return EXIT_USAGE
        matches = [row for row in rows
                   if row["trace_id"].startswith(args.trace_id)]
        if not matches:
            print(f"error: no kept trace matching {args.trace_id!r} "
                  f"in {args.source}", file=sys.stderr)
            return EXIT_RUNTIME
        if len(matches) > 1:
            ids = ", ".join(row["trace_id"] for row in matches)
            print(f"error: ambiguous trace id {args.trace_id!r} "
                  f"(matches: {ids})", file=sys.stderr)
            return EXIT_USAGE
        print(render_trace_tree(matches[0]))
        return EXIT_OK
    # export: rebuild the chrome document from rows so a hand-merged or
    # filtered JSONL still exports, and re-validate before writing.
    doc = chrome_from_rows(rows)
    try:
        validate_chrome_trace(doc)
    except ValueError as exc:
        print(f"error: invalid chrome trace: {exc}", file=sys.stderr)
        return EXIT_RUNTIME
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=1), encoding="utf-8")
    print(f"chrome trace: {out} ({len(rows)} trace(s); open in "
          f"chrome://tracing or ui.perfetto.dev)")
    return EXIT_OK


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs.diff import DEFAULT_IGNORES, DiffThresholds, diff_runs

    try:
        thresholds = DiffThresholds(
            metric_rel=args.metric_tolerance,
            miss_ratio_abs=args.miss_ratio_tolerance,
            timeseries_rel=args.timeseries_tolerance,
            ignore=tuple(args.ignore) if args.ignore else DEFAULT_IGNORES,
        )
        report = diff_runs(args.run_a, args.run_b, thresholds,
                           runs_dir=args.runs_dir)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(f"diff {args.run_a} -> {args.run_b}")
    print(report.render(show_all=args.show_all))
    return EXIT_OK if report.ok else EXIT_RUNTIME


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'FIFO can be Better than LRU' "
                    "(HotOS'23)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered policies")

    sim = sub.add_parser("simulate", help="run one policy over one trace")
    sim.add_argument("--policy", required=True)
    sim.add_argument("--trace", help="CSV or .bin trace file")
    sim.add_argument("--family", default="msr",
                     help="synthetic family when no --trace (default msr)")
    sim.add_argument("--index", type=int, default=0)
    sim.add_argument("--scale", type=float, default=1.0)
    sim.add_argument("--seed", type=int, default=42)
    sim.add_argument("--size", type=float, default=0.1,
                     help="cache size as a fraction of unique objects")

    hier = sub.add_parser(
        "hierarchy",
        help="replay one trace through a DRAM->flash->backend hierarchy")
    hier.add_argument("--trace", help="CSV or .bin trace file")
    hier.add_argument("--family", default="cdn",
                      help="synthetic family when no --trace (default cdn)")
    hier.add_argument("--index", type=int, default=0)
    hier.add_argument("--scale", type=float, default=1.0)
    hier.add_argument("--seed", type=int, default=42)
    hier.add_argument("--policy", default="qd-lp-fifo",
                      help="DRAM-tier policy (unified sized registry)")
    hier.add_argument("--flash-policy", default="fifo",
                      help="flash-tier policy (default fifo)")
    hier.add_argument("--admission", default="admit-all",
                      choices=("admit-all", "ghost", "frequency"),
                      help="flash admission controller")
    hier.add_argument("--dram-bytes", type=int, default=None,
                      help="DRAM budget in bytes (overrides "
                           "--dram-fraction)")
    hier.add_argument("--flash-bytes", type=int, default=None,
                      help="flash budget in bytes (overrides "
                           "--flash-fraction)")
    hier.add_argument("--dram-fraction", type=float, default=0.1,
                      help="DRAM budget as a fraction of the byte "
                           "footprint (default 0.1)")
    hier.add_argument("--flash-fraction", type=float, default=0.2,
                      help="flash budget as a fraction of the byte "
                           "footprint (default 0.2)")
    hier.add_argument("--ttl", type=int, default=0,
                      help="object TTL in requests (0 = no expiry)")
    hier.add_argument("--no-promote", action="store_true",
                      help="lazy promotion: serve flash hits in place "
                           "instead of copying back into DRAM")
    hier.add_argument("--size-dist", choices=("lognormal", "pareto"),
                      default="lognormal",
                      help="object-size distribution (default lognormal)")
    hier.add_argument("--size-seed", type=int, default=1,
                      help="seed for the size distribution (default 1)")

    corpus = sub.add_parser("corpus", help="build / export the corpus")
    corpus.add_argument("--scale", type=float, default=1.0)
    corpus.add_argument("--traces-per-family", type=int, default=None)
    corpus.add_argument("--seed", type=int, default=42)
    corpus.add_argument("--out", help="directory to write trace files to")
    corpus.add_argument("--format", choices=("csv", "binary"),
                        default="binary")

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument("id", choices=(
        "table1", "fig2", "fig3", "table2", "fig5", "throughput",
        "ablation-probation", "ablation-ghost", "ablation-clockbits",
        "extensions", "outage", "outage-cluster", "overload", "tiered"))
    exp.add_argument("--tier", choices=tuple(_TIERS), default="quick")
    exp.add_argument("--workers", "--jobs", dest="workers", type=int,
                     default=0,
                     help="sweep worker processes (0 = half the cores); "
                          "fast-engine cells fan out across them too, "
                          "sharing interned traces via runs/intern-cache/")
    exp.add_argument("--resume", metavar="RUN_ID",
                     help="resume a checkpointed sweep from its journal")
    exp.add_argument("--checkpoint", action="store_true",
                     help="journal completed cells under runs/<run-id>/")
    exp.add_argument("--run-id",
                     help="explicit run id for a new checkpointed sweep")
    exp.add_argument("--runs-dir",
                     help="journal root (default $REPRO_RUNS_DIR or runs/)")
    exp.add_argument("--retries", type=int, default=3, metavar="N",
                     help="max attempts per sweep cell (default 3)")
    exp.add_argument("--retry-delay", type=float, default=0.5,
                     metavar="SECONDS",
                     help="base exponential-backoff delay (default 0.5)")
    exp.add_argument("--task-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-cell wall-clock budget (default unbounded)")

    load = sub.add_parser(
        "loadgen",
        help="closed-loop load test of the cache service layer")
    load.add_argument("--policy", default="QD-LP-FIFO")
    load.add_argument("--threads", type=int, default=4)
    load.add_argument("--requests", type=int, default=20000)
    load.add_argument("--objects", type=int, default=2000,
                      help="distinct keys in the synthetic workload")
    load.add_argument("--alpha", type=float, default=1.0,
                      help="Zipf skew of the synthetic workload")
    load.add_argument("--size", type=float, default=0.1,
                      help="cache capacity as a fraction of --objects")
    load.add_argument("--ttl", type=float, default=None,
                      help="value freshness lifetime in seconds")
    load.add_argument("--shards", type=int, default=0,
                      help="run a sharded cluster with this many shards "
                           "instead of one service (0 = single-node)")
    load.add_argument("--replicas", type=int, default=1,
                      help="hot-key replica copies per key "
                           "(cluster mode only)")
    load.add_argument("--kill-shard", metavar="NAME",
                      help="take this shard down for the middle of the "
                           "run (cluster mode; forces deterministic "
                           "tick-paced virtual time)")
    load.add_argument("--tick", type=float, default=None,
                      help="virtual seconds between requests "
                           "(cluster mode; implies threads=1)")
    load.add_argument("--max-inflight", type=int, default=None,
                      help="shed misses beyond this many concurrent fetches"
                           " (open-loop: the static dispatch limit)")
    load.add_argument("--seed", type=int, default=42)
    load.add_argument("--open-loop", action="store_true",
                      help="arrival-driven overload mode on a virtual "
                           "clock: demand follows --arrival/--rate "
                           "regardless of completions")
    load.add_argument("--arrival",
                      choices=("poisson", "onoff", "diurnal", "step"),
                      default="step",
                      help="open-loop arrival schedule (default step)")
    load.add_argument("--rate", type=float, default=200.0,
                      help="baseline arrival rate in req/s (open-loop)")
    load.add_argument("--peak-rate", type=float, default=None,
                      help="step-overload peak rate in req/s "
                           "(default --burst x --rate)")
    load.add_argument("--duration", type=float, default=30.0,
                      help="virtual seconds of open-loop schedule")
    load.add_argument("--burst", type=float, default=4.0,
                      help="on/off burst multiplier (and the default "
                           "peak/base ratio for step)")
    load.add_argument("--queue", type=int, default=256,
                      help="admission queue capacity (open-loop)")
    load.add_argument("--queue-policy",
                      choices=("fifo", "lifo", "drop-oldest"),
                      default="fifo",
                      help="overflow/service discipline of the "
                           "admission queue")
    load.add_argument("--queue-deadline", type=float, default=None,
                      help="seconds a request may wait before it is "
                           "dropped instead of served late")
    load.add_argument("--limiter", choices=("static", "aimd"),
                      default="static",
                      help="dispatch concurrency limiter (open-loop): "
                           "static cap or AIMD on observed queue delay")
    load.add_argument("--target-delay", type=float, default=0.05,
                      help="AIMD limiter's queue-delay setpoint, seconds")
    load.add_argument("--promotion-cost", type=float, default=0.002,
                      help="serialised seconds charged per policy "
                           "promotion in the service-cost model")
    load.add_argument("--retry-budget", type=float, default=None,
                      metavar="RATIO",
                      help="retry-budget deposit ratio (e.g. 0.1 caps "
                           "retry amplification at ~10%%); also enables "
                           "a 3-attempt retry policy")
    load.add_argument("--trace-sample", type=float, default=None,
                      metavar="P",
                      help="head-sample this fraction of requests into "
                           "per-request traces (tail rules keep errors, "
                           "drops and the slow tail); off by default")
    load.add_argument("--trace-out", metavar="PATH",
                      help="kept-trace JSONL path (default "
                           "results/<mode>_reqtrace.jsonl; a validated "
                           ".chrome.json is written next to it)")

    metrics = sub.add_parser(
        "metrics",
        help="render a recorded observability snapshot")
    metrics.add_argument("source", nargs="?",
                         help="metrics .jsonl file (e.g. "
                              "results/loadgen_metrics.jsonl)")
    metrics.add_argument("--run", metavar="RUN_ID",
                         help="read the snapshot from a checkpointed "
                              "sweep's journal instead")
    metrics.add_argument("--runs-dir",
                         help="journal root (default $REPRO_RUNS_DIR "
                              "or runs/)")
    metrics.add_argument("--format", choices=("table", "prom", "jsonl"),
                         default="table",
                         help="output format (default table)")
    metrics.add_argument("--select", metavar="NAME",
                         help="only metrics whose name matches this "
                              "glob (e.g. 'sweep_*')")
    metrics.add_argument("--labels", metavar="K=V", action="append",
                         help="only metrics carrying this label value "
                              "(repeatable; filters AND together)")

    timeseries = sub.add_parser(
        "timeseries",
        help="render recorded windowed time series")
    timeseries.add_argument("source", nargs="?",
                            help="timeseries .jsonl file (written by "
                                 "TimeSeriesRecorder.write_jsonl)")
    timeseries.add_argument("--run", metavar="RUN_ID",
                            help="read the series from a checkpointed "
                                 "sweep's journal instead")
    timeseries.add_argument("--runs-dir",
                            help="journal root (default $REPRO_RUNS_DIR "
                                 "or runs/)")
    timeseries.add_argument("--format", choices=("spark", "csv"),
                            default="spark",
                            help="ASCII sparklines or long-format CSV")
    timeseries.add_argument("--select", metavar="GLOB",
                            help="only series whose key matches this "
                                 "glob (e.g. 'sim_misses*LRU*')")
    timeseries.add_argument("--width", type=int, default=64,
                            help="sparkline width in characters")

    trace = sub.add_parser(
        "trace",
        help="list/show/export kept request traces")
    trace_sub = trace.add_subparsers(dest="action", required=True)
    trace_list = trace_sub.add_parser(
        "list", help="table of kept traces in a reqtrace .jsonl file")
    trace_list.add_argument("source",
                            help="kept-trace .jsonl (written by "
                                 "`repro loadgen --trace-sample`)")
    trace_list.add_argument("--slowest", type=int, default=None,
                            metavar="N",
                            help="only the N slowest traces, "
                                 "slowest first")
    trace_list.add_argument("--outcome", metavar="NAME",
                            help="only traces with this root outcome "
                                 "(e.g. error, dropped, shed)")
    trace_show = trace_sub.add_parser(
        "show", help="one kept trace as an indented span tree")
    trace_show.add_argument("source", help="kept-trace .jsonl file")
    trace_show.add_argument("trace_id",
                            help="trace id (unique prefix accepted; "
                                 "`repro metrics` exemplar lines print "
                                 "the full id)")
    trace_export = trace_sub.add_parser(
        "export", help="re-export kept traces as chrome://tracing JSON")
    trace_export.add_argument("source", help="kept-trace .jsonl file")
    trace_export.add_argument("--out", required=True, metavar="PATH",
                              help="chrome trace-event JSON to write")

    diff = sub.add_parser(
        "diff",
        help="regression-diff two checkpointed runs' journals")
    diff.add_argument("run_a", metavar="RUN_A",
                      help="baseline: run id, run directory, or "
                           "journal.jsonl path")
    diff.add_argument("run_b", metavar="RUN_B",
                      help="candidate: run id, run directory, or "
                           "journal.jsonl path")
    diff.add_argument("--runs-dir",
                      help="journal root for bare run ids")
    diff.add_argument("--miss-ratio-tolerance", type=float, default=0.01,
                      metavar="ABS",
                      help="absolute per-cell miss-ratio tolerance "
                           "(default 0.01)")
    diff.add_argument("--metric-tolerance", type=float, default=0.05,
                      metavar="REL",
                      help="relative snapshot-metric tolerance "
                           "(default 0.05)")
    diff.add_argument("--timeseries-tolerance", type=float, default=0.05,
                      metavar="REL",
                      help="relative per-point time-series tolerance "
                           "(default 0.05)")
    diff.add_argument("--ignore", metavar="GLOB", action="append",
                      help="metric-name globs to skip (default: "
                           "'*_seconds' wall-time metrics; repeatable, "
                           "replaces the default)")
    diff.add_argument("--show-all", action="store_true",
                      help="also print within-tolerance drift rows")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "simulate": _cmd_simulate,
        "hierarchy": _cmd_hierarchy,
        "corpus": _cmd_corpus,
        "experiment": _cmd_experiment,
        "loadgen": _cmd_loadgen,
        "metrics": _cmd_metrics,
        "timeseries": _cmd_timeseries,
        "trace": _cmd_trace,
        "diff": _cmd_diff,
    }[args.command]
    try:
        return handler(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPT
    except Exception as exc:  # runtime failure: report, no traceback spam
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_RUNTIME


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
