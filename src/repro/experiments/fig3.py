"""Experiments F3 + T2 -- Fig. 3 and Table 2: where cache resources go.

Fig. 3 plots, for two representative traces (an MSR block trace and a
Twitter KV trace), how much cache space-time each algorithm (LRU, ARC,
LHD, Belady) spends on objects of different popularity.  Table 2 gives
the corresponding miss ratios.  The paper's reading: efficient
algorithms spend fewer resources on unpopular objects, and Belady --
the optimum -- spends the fewest, i.e. quick demotion is what
optimality looks like.

We aggregate each object's total residency (space-time) into
popularity deciles (decile 1 = the most-requested 10 % of objects) and
report each decile's share of the policy's total space-time, plus the
paper's headline: the share spent on the unpopular half of objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.tables import render_percent, render_table
from repro.experiments.common import write_result
from repro.policies.registry import make
from repro.sim.profiler import ProfileResult, profile
from repro.traces.corpus import build_trace, FAMILY_BY_NAME
from repro.traces.trace import Trace

POLICIES = ["LRU", "ARC", "LHD", "Belady"]
NUM_DECILES = 10


def resource_shares_by_popularity(
    result: ProfileResult,
    trace: Trace,
    num_groups: int = NUM_DECILES,
) -> List[float]:
    """Share of total space-time per popularity decile.

    Objects are ranked by their total request count in the trace;
    group 0 holds the most popular tenth, group ``num_groups - 1`` the
    least popular.  Returns shares summing to 1 (all zeros if the
    policy recorded no residency, which cannot happen for a non-empty
    trace).
    """
    keys, counts = np.unique(trace.keys, return_counts=True)
    # Rank objects most-popular-first; ties broken by key for determinism.
    order = np.lexsort((keys, -counts))
    group_of: Dict[int, int] = {}
    per_group = max(1, int(np.ceil(len(keys) / num_groups)))
    for rank, idx in enumerate(order):
        group_of[int(keys[idx])] = min(rank // per_group, num_groups - 1)

    totals = [0.0] * num_groups
    for key, residency in result.residency_by_key().items():
        totals[group_of[key]] += residency
    grand = sum(totals)
    if grand <= 0:
        return [0.0] * num_groups
    return [t / grand for t in totals]


@dataclass
class Fig3Result:
    """Decile shares and miss ratios for the representative traces."""

    traces: Dict[str, Trace]
    shares: Dict[Tuple[str, str], List[float]]   # (trace, policy) -> deciles
    miss_ratios: Dict[Tuple[str, str], float]    # (trace, policy) -> mr

    def unpopular_share(self, trace_name: str, policy: str) -> float:
        """Space-time share spent on the unpopular half of objects."""
        deciles = self.shares[(trace_name, policy)]
        return sum(deciles[NUM_DECILES // 2:])

    def render(self) -> str:
        sections = []
        for trace_name in self.traces:
            headers = (["policy"]
                       + [f"d{i + 1}" for i in range(NUM_DECILES)]
                       + ["unpopular half"])
            body = []
            for policy in POLICIES:
                deciles = self.shares[(trace_name, policy)]
                body.append([policy]
                            + [100.0 * share for share in deciles]
                            + [render_percent(
                                self.unpopular_share(trace_name, policy))])
            sections.append(render_table(
                headers, body,
                title=f"Fig. 3 ({trace_name}): % of cache space-time spent "
                      "per popularity decile (d1 = most popular)",
                precision=1))

        headers = ["workload"] + POLICIES
        body = []
        for trace_name in self.traces:
            body.append([trace_name] + [
                self.miss_ratios[(trace_name, policy)] for policy in POLICIES
            ])
        sections.append(render_table(
            headers, body,
            title="Table 2: miss ratios of the Fig. 3 algorithms"))
        return "\n\n".join(sections)


def representative_traces(scale: float = 1.0, seed: int = 42
                          ) -> Dict[str, Trace]:
    """The MSR-like and Twitter-like traces Fig. 3 profiles."""
    return {
        "MSR": build_trace(FAMILY_BY_NAME["msr"], 0, scale, seed),
        "Twitter": build_trace(FAMILY_BY_NAME["twitter"], 0, scale, seed),
    }


def run(scale: float = 1.0, size_fraction: float = 0.1,
        seed: int = 42) -> Fig3Result:
    """Profile the four algorithms on the two representative traces."""
    traces = representative_traces(scale, seed)
    shares: Dict[Tuple[str, str], List[float]] = {}
    miss_ratios: Dict[Tuple[str, str], float] = {}
    for trace_name, trace in traces.items():
        capacity = trace.cache_size(size_fraction)
        for policy_name in POLICIES:
            policy = make(policy_name, capacity)
            outcome = profile(policy, trace)
            shares[(trace_name, policy_name)] = resource_shares_by_popularity(
                outcome, trace)
            miss_ratios[(trace_name, policy_name)] = outcome.miss_ratio
    result = Fig3Result(traces=traces, shares=shares, miss_ratios=miss_ratios)
    write_result("fig3_table2", result.render())
    return result


__all__ = [
    "Fig3Result",
    "POLICIES",
    "NUM_DECILES",
    "resource_shares_by_popularity",
    "representative_traces",
    "run",
]
