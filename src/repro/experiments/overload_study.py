"""Experiment X6 -- goodput vs hit ratio under step overload.

The hit-ratio-vs-throughput study the ROADMAP asks for (after Qiu,
Yang and Harchol-Balter, "Can Increasing the Hit Ratio Hurt Cache
Throughput?"), run end to end on this repo's service stack: the same
step-overload arrival schedule is played open-loop against one
:class:`~repro.service.service.CacheService` per policy, with the
:class:`~repro.service.overload.ServiceCostModel` charging every
promotion the policy performs on a single serialised lock timeline --
the six-pointer critical section of the source paper's §2.

Under the surge, each served LRU hit costs a promotion, so LRU's lock
saturates at ``1 / promotion_cost`` promotions per second and its
*delivered* goodput collapses below its offline hit ratio's promise.
FIFO pays no promotions and rides the surge; QD-LP-FIFO promotes only
on probation-queue reinsertions (a few percent of hits), keeping both
the hit ratio *and* the goodput.  That crossover -- a worse hit ratio
delivering strictly more served requests per second -- is the figure
this experiment produces.

Each policy runs under two admission-control modes:

* **static** -- the legacy configuration: a fixed concurrency limit in
  front of an effectively unbounded FIFO queue with no deadline.  Under
  sustained overload the queue grows without bound and p99 queue delay
  collapses (every request is eventually served, seconds late: a
  metastable goodput trap).
* **adaptive** -- the overload-robust configuration: AIMD limiter on
  observed queue delay, a small bounded queue with ``drop-oldest``
  overflow and a dispatch deadline.  Excess arrivals are dropped *on
  time*, so whatever is served is served within the deadline and p99
  queue delay stays bounded.

Everything runs on a :class:`~repro.exec.clock.VirtualClock` with
seeded arrivals, so the whole study is deterministic and sleepless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.tables import render_table
from repro.exec.clock import VirtualClock
from repro.experiments.common import QUICK, CorpusConfig, write_result
from repro.policies.registry import make
from repro.service.backend import InMemoryBackend
from repro.service.loadgen import run_open_load
from repro.service.overload import (
    AdmissionQueue,
    AIMDLimiter,
    AimdConfig,
    OpenLoadReport,
    ServiceCostModel,
    StaticLimiter,
    StepArrivals,
)
from repro.service.service import CacheService, ServiceConfig
from repro.traces.synthetic import zipf_trace

#: eager promotion vs no promotion vs lazy promotion + quick demotion
POLICIES = ["LRU", "FIFO", "QD-LP-FIFO"]

#: admission-control modes each policy runs under
MODES = ("static", "adaptive")


@dataclass(frozen=True)
class OverloadScenario:
    """Workload + overload schedule for one X6 run (validated).

    The default numbers are chosen so the surge saturates the
    promotion lock but not the parallel servers: with
    ``promotion_cost = 2 ms`` the lock serves at most 500 promotions/s,
    so an LRU hit rate above that collapses, while ``concurrency = 16``
    parallel workers at ``base_cost = 1 ms`` could serve 16 000 req/s
    if only the lock allowed it.
    """

    num_objects: int = 2000
    num_requests: int = 20000      # length of the key sequence (cycled)
    zipf_alpha: float = 1.0
    cache_fraction: float = 0.1
    rate: float = 200.0            # baseline arrivals per second
    peak_rate: float = 1500.0      # inside the step window
    duration: float = 30.0         # virtual seconds of schedule
    base_cost: float = 0.001
    miss_penalty: float = 0.004
    promotion_cost: float = 0.002
    concurrency: int = 16          # static limit / AIMD max limit
    queue_capacity: int = 128      # adaptive mode's bounded queue
    queue_deadline: float = 0.5    # adaptive mode's dispatch deadline
    target_delay: float = 0.05     # AIMD setpoint
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_objects < 1 or self.num_requests < 1:
            raise ValueError("num_objects and num_requests must be >= 1")
        if not 0.0 < self.cache_fraction <= 1.0:
            raise ValueError(
                f"cache_fraction must be in (0, 1], "
                f"got {self.cache_fraction}")
        for name, value in (("rate", self.rate),
                            ("peak_rate", self.peak_rate),
                            ("duration", self.duration),
                            ("queue_deadline", self.queue_deadline)):
            if value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        if self.concurrency < 1 or self.queue_capacity < 1:
            raise ValueError(
                "concurrency and queue_capacity must be >= 1")

    def schedule(self) -> StepArrivals:
        """The shared step-overload arrival schedule."""
        return StepArrivals(rate=self.rate, duration=self.duration,
                            peak_rate=self.peak_rate, seed=self.seed)

    def cost(self) -> ServiceCostModel:
        return ServiceCostModel(base_cost=self.base_cost,
                                miss_penalty=self.miss_penalty,
                                promotion_cost=self.promotion_cost)


@dataclass
class OverloadRow:
    """One (policy, mode) cell of the study."""

    policy: str
    mode: str                      # "static" | "adaptive"
    report: OpenLoadReport

    @property
    def goodput(self) -> float:
        return self.report.goodput

    @property
    def hit_ratio(self) -> float:
        return self.report.hit_ratio

    @property
    def drop_ratio(self) -> float:
        return self.report.drop_ratio

    @property
    def p99_queue_delay(self) -> float:
        return self.report.queue_delay_p99


@dataclass
class OverloadResult:
    """All (policy, mode) rows plus the scenario they shared."""

    rows: List[OverloadRow]
    scenario: OverloadScenario

    def row(self, policy: str, mode: str) -> OverloadRow:
        for row in self.rows:
            if row.policy == policy and row.mode == mode:
                return row
        raise KeyError(f"no row for ({policy!r}, {mode!r})")

    def render(self) -> str:
        start, end = self.scenario.schedule().window()
        headers = ["policy", "mode", "goodput req/s", "hit ratio",
                   "dropped+shed", "p99 qdelay s", "promotions",
                   "lock busy s", "final limit"]
        body = []
        for row in self.rows:
            body.append([
                row.policy,
                row.mode,
                row.goodput,
                row.hit_ratio,
                row.drop_ratio,
                row.p99_queue_delay,
                row.report.promotions,
                row.report.lock_busy,
                row.report.final_limit,
            ])
        return render_table(
            headers, body,
            title=f"X6: goodput vs hit ratio under step overload "
                  f"({self.scenario.rate:.0f}->"
                  f"{self.scenario.peak_rate:.0f} req/s during "
                  f"t={start:.0f}s..{end:.0f}s of "
                  f"{self.scenario.duration:.0f}s; promotion cost "
                  f"{self.scenario.promotion_cost * 1e3:.1f}ms "
                  f"serialised)",
            precision=4)


def run_cell(policy_name: str, mode: str, scenario: OverloadScenario,
             keys: List[int]) -> OverloadRow:
    """Run one (policy, mode) cell on a fresh service + virtual clock."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    clock = VirtualClock()
    capacity = max(2, int(scenario.num_objects * scenario.cache_fraction))
    service = CacheService(make(policy_name, capacity), InMemoryBackend(),
                           ServiceConfig(), clock=clock)
    if mode == "static":
        # The legacy shape: fixed limit, deep FIFO queue, no deadline.
        # Every offered request is eventually served -- arbitrarily late.
        queue = AdmissionQueue(capacity=1_000_000, policy="fifo",
                               deadline=None)
        limiter = StaticLimiter(scenario.concurrency)
    else:
        queue = AdmissionQueue(capacity=scenario.queue_capacity,
                               policy="drop-oldest",
                               deadline=scenario.queue_deadline)
        limiter = AIMDLimiter(AimdConfig(
            target_delay=scenario.target_delay,
            max_limit=scenario.concurrency))
    report = run_open_load(service, keys, scenario.schedule(),
                           queue=queue, limiter=limiter,
                           cost=scenario.cost())
    report.check_conservation()
    return OverloadRow(policy=policy_name, mode=mode, report=report)


def run(config: CorpusConfig = QUICK,
        scenario: Optional[OverloadScenario] = None) -> OverloadResult:
    """Run the full study and persist the rendered table.

    The corpus tier scales the schedule duration and key-sequence
    length; rates, costs and the step window are fractional/absolute
    knobs shared by every tier, so TINY sees the same overload shape
    in a tenth of the virtual time.
    """
    if scenario is None:
        scenario = OverloadScenario(
            duration=max(6.0, 30.0 * config.scale),
            num_requests=max(2000, int(20000 * config.scale)),
            num_objects=max(200, int(2000 * config.scale)),
        )
    rng = np.random.default_rng(scenario.seed)
    keys = zipf_trace(scenario.num_objects, scenario.num_requests,
                      scenario.zipf_alpha, rng).tolist()
    rows = [run_cell(policy, mode, scenario, keys)
            for policy in POLICIES for mode in MODES]
    result = OverloadResult(rows=rows, scenario=scenario)
    write_result("overload", result.render())
    return result


__all__ = [
    "MODES",
    "POLICIES",
    "OverloadResult",
    "OverloadRow",
    "OverloadScenario",
    "run",
    "run_cell",
]
