"""Experiment X7 -- the tiered hierarchy: QD saves flash writes.

The HotOS paper argues quick demotion at the DRAM level; this
experiment extends the claim one level down.  A two-tier DRAM ->
flash -> backend hierarchy (:func:`repro.hierarchy.dram_flash_config`)
replays the web-family traces with heavy-tailed sizes; every DRAM
eviction is demoted into flash, so the DRAM policy directly controls
the flash write volume -- the resource that wears flash out and that
production tiered caches provision around.

Grid: DRAM policy (via the unified sized registry) x flash admission
controller, at a fixed DRAM budget (a small fraction of the byte
footprint) and a larger flash budget.  The QD story to reproduce:

* **Sized-QD-LP-FIFO in DRAM writes less flash than Sized-LRU** at the
  same DRAM budget with an overall hit ratio no worse -- quick
  demotion filters one-hit wonders in DRAM, so they get evicted (and
  demoted) *before* accumulating reuse state, and fewer DRAM misses
  means fewer insertions, evictions and therefore flash writes.
* **Ghost admission compounds it**: demoted one-hit wonders are
  remembered but not written, cutting write amplification further at a
  modest hit-ratio cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.tables import render_table
from repro.experiments.common import QUICK, CorpusConfig, write_result
from repro.hierarchy import dram_flash_config, simulate_hierarchy
from repro.sized.workloads import attach_sizes, unique_bytes

#: DRAM policies under test -- unified-registry names, resolved by
#: make_sized inside the hierarchy (no bespoke factory table here).
DRAM_POLICIES = (
    "Sized-FIFO",
    "Sized-LRU",
    "Sized-2-bit-CLOCK",
    "Sized-QD-LP-FIFO",
)

#: Flash admission controllers compared for every DRAM policy.
ADMISSIONS = ("admit-all", "ghost")

WEB_FAMILIES = ("cdn", "tencent_photo", "wiki", "twitter")

Cell = Tuple[str, str]  # (dram policy, flash admission)


@dataclass
class TieredStudyResult:
    """Mean hierarchy metrics per (DRAM policy, flash admission) cell."""

    hit_ratio: Dict[Cell, float]
    dram_hit_ratio: Dict[Cell, float]
    flash_write_bytes: Dict[Cell, float]
    flash_write_amp: Dict[Cell, float]
    cost_per_request: Dict[Cell, float]
    num_traces: int
    dram_fraction: float
    flash_fraction: float

    def flash_write_savings(self, admission: str = "admit-all",
                            baseline: str = "Sized-LRU",
                            challenger: str = "Sized-QD-LP-FIFO") -> float:
        """Fractional flash-write reduction of *challenger* vs *baseline*."""
        base = self.flash_write_bytes[(baseline, admission)]
        if base == 0:
            return 0.0
        return 1.0 - self.flash_write_bytes[(challenger, admission)] / base

    def render(self) -> str:
        body = []
        for admission in ADMISSIONS:
            for policy in DRAM_POLICIES:
                cell = (policy, admission)
                body.append([
                    policy, admission,
                    self.hit_ratio[cell],
                    self.dram_hit_ratio[cell],
                    self.flash_write_bytes[cell] / 2 ** 20,
                    self.flash_write_amp[cell],
                    self.cost_per_request[cell],
                ])
        table = render_table(
            ["DRAM policy", "flash admission", "hit ratio", "DRAM hits",
             "flash MiB written", "write amp", "cost/request"],
            body,
            title=(f"X7: DRAM->flash->backend on {self.num_traces} web "
                   f"traces (DRAM {self.dram_fraction:.0%} / flash "
                   f"{self.flash_fraction:.0%} of byte footprint)"))
        savings = self.flash_write_savings()
        ghost_savings = self.flash_write_savings(admission="ghost")
        return (f"{table}\n"
                f"QD-LP-FIFO vs LRU flash-write savings: "
                f"{savings:+.1%} (admit-all), {ghost_savings:+.1%} (ghost)")


def run(config: CorpusConfig = QUICK, dram_fraction: float = 0.10,
        flash_fraction: float = 0.20,
        size_seed: int = 1) -> TieredStudyResult:
    """Run the tiered grid over the web families and average per cell."""
    traces = config.scaled(families=WEB_FAMILIES).build()
    cells: List[Cell] = [(policy, admission) for policy in DRAM_POLICIES
                         for admission in ADMISSIONS]
    sums = {metric: {cell: 0.0 for cell in cells}
            for metric in ("hit", "dram_hit", "flash_bytes", "wamp",
                           "cost")}
    for trace in traces:
        sized = attach_sizes(trace, "lognormal", seed=size_seed)
        footprint = unique_bytes(sized)
        dram_bytes = max(4096, round(footprint * dram_fraction))
        flash_bytes = max(4096, round(footprint * flash_fraction))
        for policy, admission in cells:
            hierarchy_config = dram_flash_config(
                dram_bytes=dram_bytes, flash_bytes=flash_bytes,
                dram_policy=policy, flash_admission=admission)
            result = simulate_hierarchy(hierarchy_config, sized)
            flash = result.tier_report("flash")
            cell = (policy, admission)
            sums["hit"][cell] += result.overall_hit_ratio
            sums["dram_hit"][cell] += result.tier_report("dram").hit_ratio
            sums["flash_bytes"][cell] += flash.write_bytes
            sums["wamp"][cell] += flash.write_amplification
            sums["cost"][cell] += result.cost_per_request
    n = max(1, len(traces))
    result = TieredStudyResult(
        hit_ratio={c: v / n for c, v in sums["hit"].items()},
        dram_hit_ratio={c: v / n for c, v in sums["dram_hit"].items()},
        flash_write_bytes={c: v / n for c, v in
                           sums["flash_bytes"].items()},
        flash_write_amp={c: v / n for c, v in sums["wamp"].items()},
        cost_per_request={c: v / n for c, v in sums["cost"].items()},
        num_traces=len(traces),
        dram_fraction=dram_fraction,
        flash_fraction=flash_fraction,
    )
    write_result("tiered", result.render())
    return result


__all__ = ["DRAM_POLICIES", "ADMISSIONS", "WEB_FAMILIES",
           "TieredStudyResult", "run"]
