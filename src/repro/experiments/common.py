"""Shared experiment plumbing: corpus configs and result persistence.

Experiments accept a :class:`CorpusConfig` so the same code serves three
tiers:

* ``TINY``  -- seconds; used by integration tests.
* ``QUICK`` -- a couple of minutes for the whole bench suite; the
  default for ``benchmarks/``.
* ``FULL``  -- the complete synthetic corpus (100 traces at full
  length); what EXPERIMENTS.md numbers are quoted from when feasible.

Rendered experiment output is also written under ``results/`` (or
``$REPRO_RESULTS_DIR``) so benchmark runs leave artifacts behind even
when pytest captures stdout.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.exec import ExecOptions
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanTracer
from repro.obs.timeseries import TimeSeriesRecorder
from repro.sim.options import SimOptions
from repro.sim.runner import SweepResult, run_sweep
from repro.traces.corpus import build_corpus
from repro.traces.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.fast.interncache import InternCache


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters defining a deterministic corpus instance."""

    scale: float = 1.0
    traces_per_family: Optional[int] = None
    seed: int = 42
    families: Optional[tuple] = None

    def build(self) -> List[Trace]:
        """Materialise the corpus."""
        return build_corpus(
            scale=self.scale,
            traces_per_family=self.traces_per_family,
            seed=self.seed,
            families=list(self.families) if self.families else None,
        )

    def scaled(self, **changes) -> "CorpusConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


# Trace *length* is kept at scale 1.0 for QUICK: the paper's dynamics
# (probation lifetimes, reuse windows) depend on absolute trace and
# cache sizes, so the fast tier reduces the trace *count*, not length.
TINY = CorpusConfig(scale=0.1, traces_per_family=1)
QUICK = CorpusConfig(scale=1.0, traces_per_family=2)
FULL = CorpusConfig(scale=1.0)


def results_dir() -> Path:
    """Directory experiment artifacts are written to."""
    root = os.environ.get("REPRO_RESULTS_DIR")
    if root:
        path = Path(root)
    else:
        path = Path(__file__).resolve().parents[3] / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_result(name: str, text: str) -> Path:
    """Persist a rendered experiment under ``results/<name>.txt``."""
    path = results_dir() / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def default_workers() -> int:
    """Worker processes for sweep parallelism (half the cores)."""
    override = os.environ.get("REPRO_WORKERS")
    if override:
        return max(1, int(override))
    return max(1, (os.cpu_count() or 2) // 2)


def run_experiment_sweep(
    policy_names: Sequence[str],
    traces: Sequence[Trace],
    *,
    min_capacity: int = 50,
    workers: int = 0,
    options: Optional[ExecOptions] = None,
    metrics: Optional[MetricsRegistry] = None,
    timeseries: Optional[TimeSeriesRecorder] = None,
    tracer: Optional[SpanTracer] = None,
    intern_cache: Optional["InternCache"] = None,
) -> SweepResult:
    """Run an experiment's matrix through the fault-tolerant runner.

    This is the one funnel every sweep-shaped experiment goes through:
    it applies the default worker count, threads the caller's
    :class:`~repro.exec.ExecOptions` (retry/timeout knobs, checkpoint
    journal, resume, fault injection) down to
    :func:`~repro.sim.runner.run_sweep`, and narrates checkpoint ids
    and cell failures on stderr so degraded runs are visible even when
    callers only consume ``result.records``.  *timeseries* and
    *tracer* opt the sweep into windowed per-cell curves and
    sweep→cell→attempt span tracing (journalled / written as
    ``trace.json`` when checkpointing is on).

    When the sweep fans out across worker processes an
    :class:`~repro.sim.fast.interncache.InternCache` (default root
    ``runs/intern-cache/``) lets the workers share each trace's
    interning work through disk instead of repeating it per process;
    pass *intern_cache* to redirect or pre-warm it.
    """
    options = options or ExecOptions()
    workers = workers or default_workers()
    if intern_cache is None and workers > 1:
        from repro.sim.fast.interncache import InternCache

        intern_cache = InternCache()
    result = run_sweep(
        policy_names, traces,
        options=SimOptions(min_capacity=min_capacity, metrics=metrics,
                           timeseries=timeseries, tracer=tracer,
                           intern_cache=intern_cache),
        workers=workers,
        **options.sweep_kwargs(),
    )
    if result.run_id:
        print(f"sweep checkpoint: run id {result.run_id} "
              f"(resume with --resume {result.run_id})", file=sys.stderr)
    if not result.ok:
        print(f"sweep degraded: {result.failures.summary()}",
              file=sys.stderr)
    return result


__all__ = [
    "CorpusConfig",
    "TINY",
    "QUICK",
    "FULL",
    "results_dir",
    "write_result",
    "default_workers",
    "run_experiment_sweep",
]
