"""Experiment X2 -- the algorithms this paper spawned.

The paper closes by envisioning LEGO-style eviction algorithms built
from lazy promotion and quick demotion.  Two such algorithms shipped
within a year: **S3-FIFO** (SOSP'23) and **SIEVE** (NSDI'24), both now
in production cache libraries.  This experiment compares them against
QD-LP-FIFO and the classic baselines on the corpus, reporting mean
miss-ratio reduction from FIFO per group and size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.metrics import reductions_from_baseline
from repro.analysis.tables import render_table
from repro.exec import ExecOptions, FailureReport
from repro.experiments.common import (
    QUICK,
    CorpusConfig,
    run_experiment_sweep,
    write_result,
)
from repro.obs.span import SpanTracer
from repro.obs.timeseries import TimeSeriesRecorder
from repro.sim.runner import LARGE_FRACTION, SMALL_FRACTION, RunRecord

POLICIES = ["FIFO", "LRU", "ARC", "QD-LP-FIFO", "S3-FIFO", "SIEVE",
            "W-TinyLFU"]


@dataclass
class ExtensionsResult:
    """Mean reduction-from-FIFO per (group, size, policy)."""

    records: List[RunRecord]
    means: Dict[Tuple[str, float, str], float]
    config: CorpusConfig
    #: cells lost to worker faults, if any (graceful degradation)
    failures: Optional[FailureReport] = None

    def mean(self, group: str, size_fraction: float, policy: str) -> float:
        """Mean reduction for one cell."""
        return self.means[(group, size_fraction, policy)]

    def render(self) -> str:
        headers = ["policy", "block/small", "block/large",
                   "web/small", "web/large"]
        body = []
        for policy in POLICIES[1:]:
            row = [policy]
            for group in ("block", "web"):
                for size in (SMALL_FRACTION, LARGE_FRACTION):
                    row.append(100.0 * self.means[(group, size, policy)])
            body.append(row)
        return render_table(
            headers, body,
            title="X2: S3-FIFO and SIEVE vs QD-LP-FIFO -- mean miss-ratio "
                  "reduction from FIFO (%)",
            precision=1)


def run(config: CorpusConfig = QUICK, workers: int = 0,
        options: Optional[ExecOptions] = None,
        timeseries: Optional[TimeSeriesRecorder] = None,
        tracer: Optional[SpanTracer] = None) -> ExtensionsResult:
    """Run the extensions comparison."""
    traces = config.build()
    sweep = run_experiment_sweep(POLICIES, traces, min_capacity=50,
                                 workers=workers, options=options,
                                 timeseries=timeseries, tracer=tracer)
    records = sweep.records
    group_of_trace = {t.name: t.group for t in traces}
    reductions = reductions_from_baseline(records, baseline="FIFO")

    means: Dict[Tuple[str, float, str], float] = {}
    for policy, cells in reductions.items():
        per_slice: Dict[Tuple[str, float], List[float]] = {}
        for (trace_name, size), value in cells.items():
            per_slice.setdefault(
                (group_of_trace[trace_name], size), []).append(value)
        for (group, size), values in per_slice.items():
            means[(group, size, policy)] = float(np.mean(values))

    result = ExtensionsResult(records=records, means=means, config=config,
                              failures=sweep.failures)
    write_result("extensions", result.render())
    return result


__all__ = ["ExtensionsResult", "POLICIES", "run"]
