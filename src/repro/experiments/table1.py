"""Experiment T1 -- Table 1: the dataset inventory.

The paper's Table 1 lists, per dataset collection: approximate year,
number of traces, cache type, and total request/object counts.  This
experiment regenerates the same row structure from the synthetic
corpus, adding the reuse statistics (one-hit-wonder ratio, mean object
frequency) that the paper's arguments rely on, so the corpus'
block/web/KV character can be verified at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import render_table
from repro.experiments.common import QUICK, CorpusConfig, write_result
from repro.traces.corpus import FAMILY_BY_NAME
from repro.traces.stats import FamilyStats, aggregate_by_family


@dataclass
class Table1Result:
    """Rows of the regenerated Table 1."""

    rows: List[FamilyStats]
    config: CorpusConfig

    def render(self) -> str:
        """ASCII rendering in the paper's column order."""
        headers = ["collection", "year", "#traces", "type", "group",
                   "#requests", "#objects", "one-hit%", "mean freq"]
        body = []
        for row in self.rows:
            family = FAMILY_BY_NAME.get(row.family)
            body.append([
                row.family,
                family.approx_year if family else "-",
                row.num_traces,
                row.cache_type,
                row.group,
                row.total_requests,
                row.total_objects,
                100.0 * row.mean_one_hit_wonder_ratio,
                row.mean_frequency,
            ])
        totals = [
            "TOTAL", "-", sum(r.num_traces for r in self.rows), "-", "-",
            sum(r.total_requests for r in self.rows),
            sum(r.total_objects for r in self.rows), None, None,
        ]
        body.append(totals)
        return render_table(
            headers, body,
            title="Table 1: synthetic corpus standing in for the paper's "
                  "10 dataset collections",
            precision=1,
        )


def run(config: CorpusConfig = QUICK) -> Table1Result:
    """Build the corpus and aggregate its Table 1 rows."""
    traces = config.build()
    cache_types = {name: family.cache_type
                   for name, family in FAMILY_BY_NAME.items()}
    rows = aggregate_by_family(traces, cache_types=cache_types)
    result = Table1Result(rows=rows, config=config)
    write_result("table1", result.render())
    return result


__all__ = ["Table1Result", "run"]
