"""Experiment F5 -- Fig. 5: QD-enhanced algorithms and QD-LP-FIFO.

The paper's central evaluation: for each of the five state-of-the-art
algorithms (ARC, LIRS, CACHEUS, LeCaR, LHD), its QD-enhanced variant,
and QD-LP-FIFO, compute the per-trace **miss-ratio reduction from
FIFO** and plot the percentile distribution across the corpus,
separately for block and web workloads at the small (0.1 %) and large
(10 %) cache sizes.

The paper's claims this experiment must reproduce in shape:

* QD-X beats X on almost all percentiles for every state-of-the-art X.
* The QD gap is larger (1) for weaker X, (2) at the large cache size,
  (3) on web workloads.
* QD-LP-FIFO achieves similar-or-better reductions than the state of
  the art (e.g. beats LIRS and LeCaR on average).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.metrics import (
    PERCENTILES,
    PercentileSummary,
    pairwise_reduction,
    reductions_from_baseline,
    summarize,
)
from repro.analysis.tables import render_percent, render_table
from repro.exec import ExecOptions, FailureReport
from repro.experiments.common import (
    QUICK,
    CorpusConfig,
    run_experiment_sweep,
    write_result,
)
from repro.obs.span import SpanTracer
from repro.obs.timeseries import TimeSeriesRecorder
from repro.policies.registry import SOTA_NAMES
from repro.sim.runner import LARGE_FRACTION, SMALL_FRACTION, RunRecord

#: Everything Fig. 5 plots, plus the LRU/FIFO baselines it normalises by.
POLICIES = (["FIFO", "LRU"]
            + SOTA_NAMES
            + [f"QD-{name}" for name in SOTA_NAMES]
            + ["QD-LP-FIFO"])

SIZES = (SMALL_FRACTION, LARGE_FRACTION)
GROUPS = ("block", "web")


@dataclass
class Fig5Result:
    """Reduction-from-FIFO percentile summaries per (group, size)."""

    records: List[RunRecord]
    #: (group, size_fraction, policy) -> summary of reductions from FIFO
    summaries: Dict[Tuple[str, float, str], PercentileSummary]
    #: "QD-X vs X" mean/max reductions of the QD variant vs its base
    qd_gains: Dict[str, Tuple[float, float]]
    #: ARC's mean reduction from LRU (the paper's 6.2 % yardstick)
    arc_vs_lru_mean: float
    config: CorpusConfig
    #: cells lost to worker faults, if any (graceful degradation)
    failures: Optional[FailureReport] = None

    def summary(self, group: str, size_fraction: float,
                policy: str) -> PercentileSummary:
        """Summary for one cell; ``KeyError`` if the cell wasn't run."""
        return self.summaries[(group, size_fraction, policy)]

    def render(self) -> str:
        sections = []
        for group in GROUPS:
            for size in SIZES:
                label = "small" if size == SMALL_FRACTION else "large"
                headers = (["policy"]
                           + [f"p{p}" for p in PERCENTILES]
                           + ["mean"])
                body = []
                for policy in POLICIES[1:]:  # skip FIFO: reduction is 0
                    cell = self.summaries.get((group, size, policy))
                    if cell is None:
                        continue
                    body.append(
                        [policy]
                        + [100.0 * value for _, value in cell.percentiles]
                        + [100.0 * cell.mean])
                sections.append(render_table(
                    headers, body,
                    title=(f"Fig. 5 ({group} workloads, {label} size): "
                           "miss-ratio reduction from FIFO (%), percentiles "
                           "across traces"),
                    precision=1))

        gain_rows = [[name,
                      render_percent(self.qd_gains[name][0]),
                      render_percent(self.qd_gains[name][1])]
                     for name in SOTA_NAMES]
        sections.append(render_table(
            ["algorithm", "mean QD reduction", "max QD reduction"],
            gain_rows,
            title="QD-X vs X: miss-ratio reduction of the QD-enhanced "
                  "variant relative to its base algorithm"))
        sections.append(
            "ARC mean miss-ratio reduction from LRU: "
            + render_percent(self.arc_vs_lru_mean)
            + "  (paper: 6.2% across its 5307 traces)")
        return "\n\n".join(sections)


def run(config: CorpusConfig = QUICK, workers: int = 0,
        options: Optional[ExecOptions] = None,
        timeseries: Optional[TimeSeriesRecorder] = None,
        tracer: Optional[SpanTracer] = None) -> Fig5Result:
    """Run the full Fig. 5 matrix and aggregate."""
    traces = config.build()
    sweep = run_experiment_sweep(POLICIES, traces, min_capacity=50,
                                 workers=workers, options=options,
                                 timeseries=timeseries, tracer=tracer)
    records = sweep.records

    group_of_trace = {t.name: t.group for t in traces}
    reductions = reductions_from_baseline(records, baseline="FIFO")

    summaries: Dict[Tuple[str, float, str], PercentileSummary] = {}
    for policy, cells in reductions.items():
        per_slice: Dict[Tuple[str, float], List[float]] = {}
        for (trace_name, size), value in cells.items():
            per_slice.setdefault(
                (group_of_trace[trace_name], size), []).append(value)
        for (group, size), values in per_slice.items():
            summaries[(group, size, policy)] = summarize(
                values, label=f"{policy}/{group}/{size}")

    qd_gains = {}
    for name in SOTA_NAMES:
        gains = pairwise_reduction(records, f"QD-{name}", name)
        qd_gains[name] = (float(np.mean(gains)), float(np.max(gains)))
    arc_vs_lru = pairwise_reduction(records, "ARC", "LRU")

    result = Fig5Result(
        records=records,
        summaries=summaries,
        qd_gains=qd_gains,
        arc_vs_lru_mean=float(np.mean(arc_vs_lru)),
        config=config,
        failures=sweep.failures,
    )
    write_result("fig5", result.render())
    return result


__all__ = ["Fig5Result", "POLICIES", "SIZES", "GROUPS", "run"]
