"""Experiment X4 -- cache availability across a backend outage.

"Can Increasing the Hit Ratio Hurt Cache Throughput?" observes that
offline hit ratio and online serving behaviour can diverge; the paper's
own §2 argues FIFO-family policies are built for *serving*.  This
experiment measures that directly: each policy fronts the same failing
backend through a :class:`~repro.service.service.CacheService`, a
synthetic Zipf workload is replayed on a virtual clock, and a total
backend outage is injected mid-run.

During the outage, every request the cache cannot answer -- fresh hit
or serve-stale -- becomes a user-visible error, so the figures of merit
are:

* **availability** -- fraction of requests served a value (fresh or
  stale);
* **effective hit ratio** -- fraction served *from the cache*
  (fresh hits + stale serves), the hit ratio users actually
  experienced;
* **fresh hit ratio** -- the classic offline-style hit ratio, for
  contrast.

Everything runs on a :class:`~repro.exec.clock.VirtualClock` with a
fixed per-request tick, so the run is deterministic and sleepless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.tables import render_table
from repro.exec.clock import VirtualClock
from repro.exec.retry import RetryPolicy
from repro.experiments.common import QUICK, CorpusConfig, write_result
from repro.policies.registry import make
from repro.service.backend import FaultInjectedBackend, InMemoryBackend
from repro.service.breaker import BreakerConfig
from repro.service.faults import BackendFaultPlan
from repro.service.loadgen import LoadReport, run_load
from repro.service.service import CacheService, ServiceConfig
from repro.traces.synthetic import zipf_trace

#: the comparison the issue asks for: the classic eager-promotion
#: baseline vs the paper's lazy-promotion FIFO vs its QD+LP design
POLICIES = ["LRU", "FIFO-Reinsertion", "QD-LP-FIFO"]

#: virtual seconds between consecutive requests
TICK = 0.01


@dataclass(frozen=True)
class OutageScenario:
    """Workload + fault schedule for one outage run (validated)."""

    num_objects: int = 2000
    num_requests: int = 20000
    zipf_alpha: float = 1.0
    cache_fraction: float = 0.1
    # TTLs are fractions of the run's virtual duration so every tier
    # (tiny/quick/full) exercises expiry and serve-stale identically.
    ttl_fraction: float = 0.10
    stale_fraction: float = 0.35
    negative_fraction: float = 0.005
    outage_start: float = 0.4   # fraction of the run
    outage_end: float = 0.7
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_objects < 1 or self.num_requests < 1:
            raise ValueError("num_objects and num_requests must be >= 1")
        if not 0.0 < self.cache_fraction <= 1.0:
            raise ValueError(
                f"cache_fraction must be in (0, 1], "
                f"got {self.cache_fraction}")
        if self.ttl_fraction <= 0 or self.stale_fraction < 0:
            raise ValueError(
                f"ttl_fraction must be > 0 and stale_fraction >= 0, "
                f"got {self.ttl_fraction} / {self.stale_fraction}")
        if not 0.0 <= self.outage_start < self.outage_end <= 1.0:
            raise ValueError(
                f"outage window must satisfy 0 <= start < end <= 1, "
                f"got [{self.outage_start}, {self.outage_end}]")

    @property
    def duration(self) -> float:
        """Virtual length of the whole run in seconds."""
        return self.num_requests * TICK

    @property
    def ttl(self) -> float:
        return self.ttl_fraction * self.duration

    @property
    def stale_ttl(self) -> float:
        return self.stale_fraction * self.duration

    @property
    def negative_ttl(self) -> float:
        return self.negative_fraction * self.duration

    def window(self) -> tuple:
        """The outage window in virtual seconds."""
        return (self.outage_start * self.duration,
                self.outage_end * self.duration)


@dataclass
class PolicyOutageRow:
    """Measured serving behaviour of one policy across the outage."""

    policy: str
    report: LoadReport

    @property
    def availability(self) -> float:
        return self.report.availability

    @property
    def effective_hit_ratio(self) -> float:
        served_from_cache = (self.report.outcomes["hit"]
                             + self.report.outcomes["stale"])
        return served_from_cache / max(1, self.report.requests)

    @property
    def fresh_hit_ratio(self) -> float:
        return self.report.outcomes["hit"] / max(1, self.report.requests)


@dataclass
class OutageResult:
    """All policies' rows plus the scenario they shared."""

    rows: List[PolicyOutageRow]
    scenario: OutageScenario

    def row(self, policy: str) -> PolicyOutageRow:
        for row in self.rows:
            if row.policy == policy:
                return row
        raise KeyError(f"no row for policy {policy!r}")

    def render(self) -> str:
        start, end = self.scenario.window()
        headers = ["policy", "availability", "eff. hit ratio",
                   "fresh hit ratio", "stale", "errors", "shed",
                   "breaker trips"]
        body = []
        for row in self.rows:
            trips = sum(1 for _, _, dst in row.report.breaker_transitions
                        if dst == "open")
            body.append([
                row.policy,
                row.availability,
                row.effective_hit_ratio,
                row.fresh_hit_ratio,
                row.report.outcomes["stale"],
                row.report.outcomes["error"],
                row.report.outcomes["shed"],
                trips,
            ])
        return render_table(
            headers, body,
            title=f"X4: serving through a backend outage "
                  f"(t={start:.0f}s..{end:.0f}s of "
                  f"{self.scenario.duration:.0f}s, "
                  f"{self.scenario.num_requests} requests)",
            precision=4)


def run_policy(policy_name: str, scenario: OutageScenario,
               keys: List[int]) -> PolicyOutageRow:
    """Replay the scenario through one policy's service instance."""
    start, end = scenario.window()
    clock = VirtualClock()
    plan = BackendFaultPlan().outage(start, end)
    backend = FaultInjectedBackend(InMemoryBackend(), plan, clock)
    capacity = max(2, int(scenario.num_objects * scenario.cache_fraction))
    service = CacheService(
        make(policy_name, capacity),
        backend,
        ServiceConfig(
            ttl=scenario.ttl,
            stale_ttl=scenario.stale_ttl,
            negative_ttl=scenario.negative_ttl,
            retry=RetryPolicy(max_attempts=2, base_delay=0.005,
                              timeout=None),
            breaker=BreakerConfig(failure_threshold=5, reset_timeout=2.0),
        ),
        clock=clock,
    )
    report = run_load(service, keys, threads=1, tick=TICK)
    report.check_accounting()
    return PolicyOutageRow(policy=policy_name, report=report)


def run(config: CorpusConfig = QUICK,
        scenario: Optional[OutageScenario] = None) -> OutageResult:
    """Run the outage comparison and persist the rendered table.

    The corpus tier only scales the synthetic workload length; the
    fault schedule is fractional, so every tier sees the same relative
    outage.
    """
    if scenario is None:
        scenario = OutageScenario(
            num_requests=max(1000, int(20000 * config.scale)),
            num_objects=max(100, int(2000 * config.scale)),
        )
    rng = np.random.default_rng(scenario.seed)
    keys = zipf_trace(scenario.num_objects, scenario.num_requests,
                      scenario.zipf_alpha, rng).tolist()
    rows = [run_policy(name, scenario, keys) for name in POLICIES]
    result = OutageResult(rows=rows, scenario=scenario)
    write_result("outage", result.render())
    return result


__all__ = [
    "POLICIES",
    "TICK",
    "OutageResult",
    "OutageScenario",
    "PolicyOutageRow",
    "run",
    "run_policy",
]
