"""Experiment X3 -- thread scalability under lock contention (§1-2).

The paper: LRU's per-hit locked promotion makes the list head a
contention point, while FIFO-family policies need no lock on the hit
path and scale with thread count.  This experiment measures each
policy's locked-work rate on a real workload (single-threaded
simulation), then runs the discrete-event contention model of
``repro.concurrency`` to produce throughput-vs-threads curves.

Expected shape: FIFO/CLOCK/SIEVE throughput grows with threads while
LRU/ARC saturate early at the lock's service rate; the speedup gap at
high thread counts is the paper's scalability argument, quantified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.tables import render_table
from repro.concurrency.model import (
    PolicyProfile,
    ScalingPoint,
    profile_policy,
    scaling_table,
)
from repro.experiments.common import write_result
from repro.policies.registry import make
from repro.traces.synthetic import zipf_trace

POLICIES = ["FIFO", "FIFO-Reinsertion", "2-bit-CLOCK", "SIEVE",
            "QD-LP-FIFO", "LRU", "ARC"]
THREADS = (1, 2, 4, 8, 16, 32)


@dataclass
class ScalabilityResult:
    """Throughput-vs-threads curves per policy."""

    curves: Dict[str, List[ScalingPoint]]
    profiles: Dict[str, PolicyProfile]
    thread_counts: Sequence[int] = THREADS

    def speedup(self, policy: str, threads: int) -> float:
        """Throughput at *threads* relative to the policy's own T=1."""
        points = {p.threads: p for p in self.curves[policy]}
        return points[threads].throughput / points[1].throughput

    def render(self) -> str:
        top = self.thread_counts[-1]
        headers = (["policy"]
                   + [f"T={t}" for t in self.thread_counts]
                   + [f"speedup@{top}", f"lock util@{top}",
                      "promotions/req"])
        body = []
        for name, points in self.curves.items():
            row = [name]
            row += [p.throughput for p in points]
            row.append(self.speedup(name, top))
            row.append(points[-1].lock_utilisation)
            row.append(self.profiles[name].promotions_per_request)
            body.append(row)
        return render_table(
            headers, body,
            title="X3: modelled throughput (requests/time-unit) vs "
                  "thread count under a global cache lock",
            precision=2)


def run(
    num_objects: int = 4000,
    num_requests: int = 60_000,
    alpha: float = 1.1,
    seed: int = 5,
    thread_counts: Sequence[int] = THREADS,
) -> ScalabilityResult:
    """Profile the policies on a hot workload and model their scaling."""
    rng = np.random.default_rng(seed)
    keys = zipf_trace(num_objects, num_requests, alpha, rng).tolist()
    capacity = num_objects // 2

    profiles = {}
    for name in POLICIES:
        profiles[name] = profile_policy(make(name, capacity), keys)
    curves = scaling_table(list(profiles.values()),
                           thread_counts=thread_counts)
    result = ScalabilityResult(curves=curves, profiles=profiles,
                               thread_counts=tuple(thread_counts))
    write_result("scalability", result.render())
    return result


__all__ = ["ScalabilityResult", "POLICIES", "THREADS", "run"]
