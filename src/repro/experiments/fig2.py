"""Experiment F2 -- Fig. 2: LP-FIFO vs LRU across the corpus.

Fig. 2(a-d) reports, per dataset and at the small (0.1 %) and large
(10 %) cache sizes, the fraction of traces on which FIFO-Reinsertion
(1-bit CLOCK) and 2-bit CLOCK achieve a lower miss ratio than LRU.
The paper's headline: FIFO-Reinsertion beats LRU on 9 (small) and 7
(large) of the 10 datasets, and 2-bit CLOCK widens the margin.

Fig. 2(e) illustrates *why*: under FIFO-Reinsertion, a newly-inserted
unpopular object is pushed toward eviction by not-yet-promoted older
objects as well as newer ones, so lazy promotion implies quick
demotion.  We quantify that directly by measuring the mean residency
of never-hit objects (the demotion age) under LRU vs FIFO-Reinsertion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.comparison import WinFraction, datasets_won, win_fractions
from repro.analysis.tables import render_percent, render_table
from repro.core.clock import FIFOReinsertion
from repro.exec import ExecOptions, FailureReport
from repro.experiments.common import (
    QUICK,
    CorpusConfig,
    run_experiment_sweep,
    write_result,
)
from repro.obs.span import SpanTracer
from repro.obs.timeseries import TimeSeriesRecorder
from repro.policies.lru import LRU
from repro.sim.profiler import profile
from repro.sim.runner import LARGE_FRACTION, SMALL_FRACTION, RunRecord
from repro.traces.synthetic import one_hit_wonder_trace

POLICIES = ["LRU", "FIFO-Reinsertion", "2-bit-CLOCK"]


@dataclass
class Fig2Result:
    """Win fractions plus the Fig. 2(e) demotion-age measurement."""

    records: List[RunRecord]
    by_family: Dict[str, List[WinFraction]]   # challenger -> rows
    by_group: Dict[str, List[WinFraction]]
    demotion_age_lru: float
    demotion_age_fifo_reinsertion: float
    config: CorpusConfig
    #: cells lost to worker faults, if any (graceful degradation)
    failures: Optional[FailureReport] = None

    def datasets_won(self, challenger: str, size_fraction: float) -> int:
        """Datasets (families) where *challenger* beats LRU on most
        traces at the given size -- the paper's '9 of 10' statistic."""
        rows = [f for f in self.by_family[challenger]
                if f.size_fraction == size_fraction]
        return datasets_won(rows)

    def render(self) -> str:
        sections = []
        for challenger in POLICIES[1:]:
            headers = ["dataset", "size", "traces",
                       f"% favouring {challenger}"]
            body = []
            for frac in self.by_family[challenger]:
                body.append([
                    frac.slice_name,
                    "small" if frac.size_fraction == SMALL_FRACTION else "large",
                    frac.total,
                    render_percent(frac.win_fraction),
                ])
            num_families = len({f.slice_name
                                for f in self.by_family[challenger]})
            for size, label in ((SMALL_FRACTION, "small"),
                                (LARGE_FRACTION, "large")):
                body.append([
                    f"-> datasets won ({label})", label,
                    num_families,
                    f"{self.datasets_won(challenger, size)}/{num_families}",
                ])
            sections.append(render_table(
                headers, body,
                title=f"Fig. 2: fraction of traces where {challenger} "
                      "has a lower miss ratio than LRU"))
        sections.append(render_table(
            ["policy", "mean demotion age of never-hit objects (requests)"],
            [["LRU", self.demotion_age_lru],
             ["FIFO-Reinsertion", self.demotion_age_fifo_reinsertion]],
            title="Fig. 2(e): lazy promotion implies quick demotion",
            precision=1))
        return "\n\n".join(sections)


def _demotion_ages(seed: int = 7) -> Dict[str, float]:
    """Fig. 2(e): mean eviction age of never-hit objects.

    A Zipf-plus-one-hit-wonder workload supplies a steady stream of
    unpopular objects; the faster an algorithm evicts them, the lower
    their mean residency.
    """
    rng = np.random.default_rng(seed)
    keys = one_hit_wonder_trace(
        core_objects=2000, num_requests=40_000, alpha=0.9,
        ohw_fraction=0.3, rng=rng)
    capacity = 400
    ages = {}
    for policy in (LRU(capacity), FIFOReinsertion(capacity)):
        ages[policy.name] = profile(policy, keys).mean_zero_hit_age()
    return ages


def run(config: CorpusConfig = QUICK, workers: int = 0,
        options: Optional[ExecOptions] = None,
        timeseries: Optional[TimeSeriesRecorder] = None,
        tracer: Optional[SpanTracer] = None) -> Fig2Result:
    """Run the Fig. 2 study over the corpus."""
    traces = config.build()
    sweep = run_experiment_sweep(POLICIES, traces, min_capacity=50,
                                 workers=workers, options=options,
                                 timeseries=timeseries, tracer=tracer)
    records = sweep.records

    by_family = {}
    by_group = {}
    for challenger in POLICIES[1:]:
        by_family[challenger] = win_fractions(
            records, challenger, "LRU", by="family")
        by_group[challenger] = win_fractions(
            records, challenger, "LRU", by="group")

    ages = _demotion_ages()
    result = Fig2Result(
        records=records,
        by_family=by_family,
        by_group=by_group,
        demotion_age_lru=ages["LRU"],
        demotion_age_fifo_reinsertion=ages["FIFO-Reinsertion"],
        config=config,
        failures=sweep.failures,
    )
    write_result("fig2", result.render())
    return result


__all__ = ["Fig2Result", "POLICIES", "run"]
