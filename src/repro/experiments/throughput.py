"""Experiment X1 -- the throughput argument (paper §1/§2).

The paper's motivation for FIFO-based designs is operational: LRU
updates six pointers under a lock on *every hit*, while FIFO-family
algorithms touch at most one boolean.  Absolute numbers from a Python
simulator are not meaningful, but the *relative* cost of a cache hit
across policies is: FIFO-family hits should be measurably cheaper than
LRU-family hits, and dramatically cheaper than the complex state of
the art.

The workload is a hot, high-hit-ratio Zipf stream (cache sized to 50 %
of the objects) so the measurement is dominated by the hit path --
exactly the path the paper's scalability argument concerns.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.tables import render_table
from repro.experiments.common import write_result
from repro.policies.registry import make
from repro.sim.fast.dispatch import engine_for
from repro.sim.fast.intern import intern_trace
from repro.traces.synthetic import zipf_trace

DEFAULT_POLICIES = [
    "FIFO", "FIFO-Reinsertion", "2-bit-CLOCK", "SIEVE", "S3-FIFO",
    "QD-LP-FIFO", "LRU", "SLRU", "ARC", "LIRS", "LeCaR", "CACHEUS", "LHD",
]

#: Policies measured by the fast-vs-reference comparison (the subset
#: with vectorized engines).
FAST_POLICIES = [
    "FIFO", "LRU", "FIFO-Reinsertion", "2-bit-CLOCK", "SIEVE",
    "S3-FIFO", "QD-LP-FIFO", "ARC", "LHD", "QD-ARC", "QD-LHD",
]

#: The frozen benchmark workload behind ``BENCH_throughput.json``: a
#: skewed Zipf stream at a production-like operating point (~2 % miss
#: ratio), where the vectorized hit path dominates.  Changing any of
#: these invalidates the committed baseline.
BENCH_WORKLOAD = {
    "num_objects": 100_000,
    "num_requests": 500_000,
    "alpha": 1.5,
    "capacity": 50_000,
    "seed": 17,
}


@dataclass
class ThroughputResult:
    """Requests/second per policy on the hot workload."""

    ops_per_second: Dict[str, float]
    hit_ratio: Dict[str, float]
    promotions_per_request: Dict[str, float]
    num_requests: int

    def relative_to(self, reference: str = "LRU") -> Dict[str, float]:
        """Speedup of each policy relative to *reference*."""
        base = self.ops_per_second[reference]
        return {name: ops / base for name, ops in self.ops_per_second.items()}

    def render(self) -> str:
        relative = self.relative_to()
        body = [[name, ops / 1e3, relative[name], self.hit_ratio[name],
                 self.promotions_per_request[name]]
                for name, ops in sorted(self.ops_per_second.items(),
                                        key=lambda kv: -kv[1])]
        return render_table(
            ["policy", "k-requests/s", "vs LRU", "hit ratio",
             "promotions/req"],
            body,
            title=f"X1: simulated throughput on a hot Zipf workload "
                  f"({self.num_requests} requests)",
            precision=2)


def run(
    policies: Sequence[str] = tuple(DEFAULT_POLICIES),
    num_objects: int = 10_000,
    num_requests: int = 200_000,
    alpha: float = 1.1,
    seed: int = 13,
) -> ThroughputResult:
    """Measure request throughput per policy on one hot workload."""
    rng = np.random.default_rng(seed)
    keys: List[int] = zipf_trace(num_objects, num_requests, alpha, rng).tolist()
    capacity = num_objects // 2

    ops: Dict[str, float] = {}
    hit_ratio: Dict[str, float] = {}
    promotions: Dict[str, float] = {}
    for name in policies:
        policy = make(name, capacity)
        request = policy.request
        start = time.perf_counter()
        for key in keys:
            request(key)
        elapsed = time.perf_counter() - start
        ops[name] = num_requests / elapsed
        hit_ratio[name] = policy.stats.hit_ratio
        promotions[name] = policy.promotion_count / num_requests

    result = ThroughputResult(
        ops_per_second=ops, hit_ratio=hit_ratio,
        promotions_per_request=promotions, num_requests=num_requests)
    write_result("throughput", result.render())
    return result


@dataclass
class FastComparisonResult:
    """Fast-engine vs reference-loop throughput on the frozen workload."""

    workload: Dict[str, float]
    #: policy -> {reference_mps, fast_mps, speedup, miss_ratio}
    rows: Dict[str, Dict[str, float]]

    def speedup(self, policy: str) -> float:
        """Fast-engine speedup over the reference for *policy*."""
        return self.rows[policy]["speedup"]

    def render(self) -> str:
        body = [[name, row["reference_mps"], row["fast_mps"],
                 row["speedup"], row["miss_ratio"]]
                for name, row in self.rows.items()]
        return render_table(
            ["policy", "reference M req/s", "fast M req/s", "speedup",
             "miss ratio"],
            body,
            title=f"Fast-engine throughput vs reference "
                  f"(zipf alpha={self.workload['alpha']}, "
                  f"{self.workload['num_requests']} requests, "
                  f"capacity {self.workload['capacity']})",
            precision=2)

    def to_json(self) -> dict:
        return {"workload": self.workload, "policies": self.rows}


def run_fast_comparison(
    policies: Sequence[str] = tuple(FAST_POLICIES),
    workload: Optional[Dict[str, float]] = None,
    repeats: int = 3,
    json_path: Optional[Union[str, Path]] = None,
) -> FastComparisonResult:
    """Measure fast-engine speedup over the reference request loop.

    Replays one interned trace through each policy's vectorized engine
    (best of *repeats* runs) and through the reference ``request``
    loop (best of two -- it dominates the wall time).  Hit/miss counts
    are asserted identical between the paths, so this doubles as an
    end-to-end differential check.  With *json_path* the result is
    also written as the ``BENCH_throughput.json`` regression artifact.
    """
    spec = dict(BENCH_WORKLOAD)
    if workload:
        spec.update(workload)
    rng = np.random.default_rng(int(spec["seed"]))
    raw = zipf_trace(int(spec["num_objects"]), int(spec["num_requests"]),
                     float(spec["alpha"]), rng)
    keys = raw.tolist()
    capacity = int(spec["capacity"])
    interned = intern_trace(raw)

    rows: Dict[str, Dict[str, float]] = {}
    for name in policies:
        t_ref = float("inf")
        for _ in range(2):
            ref = make(name, capacity)
            request = ref.request
            start = time.perf_counter()
            for key in keys:
                request(key)
            t_ref = min(t_ref, time.perf_counter() - start)
        t_fast = float("inf")
        engine = None
        for _ in range(max(1, repeats)):
            engine = engine_for(make(name, capacity), interned.num_unique)
            if engine is None:
                break
            start = time.perf_counter()
            engine.replay(interned.ids)
            t_fast = min(t_fast, time.perf_counter() - start)
        if engine is None:
            continue
        if (engine.hits, engine.misses) != (ref.stats.hits,
                                            ref.stats.misses):
            raise AssertionError(
                f"fast engine diverged from reference for {name}: "
                f"{engine.hits}/{engine.misses} vs "
                f"{ref.stats.hits}/{ref.stats.misses}")
        n = len(keys)
        rows[name] = {
            "reference_mps": round(n / t_ref / 1e6, 4),
            "fast_mps": round(n / t_fast / 1e6, 4),
            "speedup": round(t_ref / t_fast, 3),
            "miss_ratio": round(engine.miss_ratio, 6),
        }

    result = FastComparisonResult(workload=spec, rows=rows)
    write_result("throughput_fast", result.render())
    if json_path is not None:
        Path(json_path).write_text(
            json.dumps(result.to_json(), indent=2) + "\n")
    return result


__all__ = [
    "ThroughputResult",
    "FastComparisonResult",
    "DEFAULT_POLICIES",
    "FAST_POLICIES",
    "BENCH_WORKLOAD",
    "run",
    "run_fast_comparison",
]
