"""Experiment X1 -- the throughput argument (paper §1/§2).

The paper's motivation for FIFO-based designs is operational: LRU
updates six pointers under a lock on *every hit*, while FIFO-family
algorithms touch at most one boolean.  Absolute numbers from a Python
simulator are not meaningful, but the *relative* cost of a cache hit
across policies is: FIFO-family hits should be measurably cheaper than
LRU-family hits, and dramatically cheaper than the complex state of
the art.

The workload is a hot, high-hit-ratio Zipf stream (cache sized to 50 %
of the objects) so the measurement is dominated by the hit path --
exactly the path the paper's scalability argument concerns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.tables import render_table
from repro.experiments.common import write_result
from repro.policies.registry import make
from repro.traces.synthetic import zipf_trace

DEFAULT_POLICIES = [
    "FIFO", "FIFO-Reinsertion", "2-bit-CLOCK", "SIEVE", "S3-FIFO",
    "QD-LP-FIFO", "LRU", "SLRU", "ARC", "LIRS", "LeCaR", "CACHEUS", "LHD",
]


@dataclass
class ThroughputResult:
    """Requests/second per policy on the hot workload."""

    ops_per_second: Dict[str, float]
    hit_ratio: Dict[str, float]
    promotions_per_request: Dict[str, float]
    num_requests: int

    def relative_to(self, reference: str = "LRU") -> Dict[str, float]:
        """Speedup of each policy relative to *reference*."""
        base = self.ops_per_second[reference]
        return {name: ops / base for name, ops in self.ops_per_second.items()}

    def render(self) -> str:
        relative = self.relative_to()
        body = [[name, ops / 1e3, relative[name], self.hit_ratio[name],
                 self.promotions_per_request[name]]
                for name, ops in sorted(self.ops_per_second.items(),
                                        key=lambda kv: -kv[1])]
        return render_table(
            ["policy", "k-requests/s", "vs LRU", "hit ratio",
             "promotions/req"],
            body,
            title=f"X1: simulated throughput on a hot Zipf workload "
                  f"({self.num_requests} requests)",
            precision=2)


def run(
    policies: Sequence[str] = tuple(DEFAULT_POLICIES),
    num_objects: int = 10_000,
    num_requests: int = 200_000,
    alpha: float = 1.1,
    seed: int = 13,
) -> ThroughputResult:
    """Measure request throughput per policy on one hot workload."""
    rng = np.random.default_rng(seed)
    keys: List[int] = zipf_trace(num_objects, num_requests, alpha, rng).tolist()
    capacity = num_objects // 2

    ops: Dict[str, float] = {}
    hit_ratio: Dict[str, float] = {}
    promotions: Dict[str, float] = {}
    for name in policies:
        policy = make(name, capacity)
        request = policy.request
        start = time.perf_counter()
        for key in keys:
            request(key)
        elapsed = time.perf_counter() - start
        ops[name] = num_requests / elapsed
        hit_ratio[name] = policy.stats.hit_ratio
        promotions[name] = policy.promotion_count / num_requests

    result = ThroughputResult(
        ops_per_second=ops, hit_ratio=hit_ratio,
        promotions_per_request=promotions, num_requests=num_requests)
    write_result("throughput", result.render())
    return result


__all__ = ["ThroughputResult", "DEFAULT_POLICIES", "run"]
