"""Experiment X3-cluster -- killing a shard of a sharded cache cluster.

X4 (:mod:`repro.experiments.outage`) asks what one cache node does when
its *backend* dies.  This experiment promotes the question to the
deployment the paper actually targets -- a fleet of cache shards behind
consistent hashing -- and kills a *shard* instead: one of four
:class:`~repro.service.service.CacheService` fault domains goes dark
for a window mid-run while a Zipf+Pareto workload replays through the
:class:`~repro.cluster.cluster.CacheCluster` router.

Measured per policy (LRU vs FIFO-Reinsertion vs QD-LP-FIFO), with hot-
key replication on and off:

* **availability** and **effective hit ratio**, cluster-wide and per
  phase (before / during / after the kill window);
* **p99 latency** over the whole run;
* replica hits and failover behaviour during the window.

The punchline mirrors the single-node result at fleet scale: the
eviction policy decides the *hit ratio floor* each shard contributes,
while replication decides whether a shard loss is invisible
(availability stays ~100%, the dead shard's hot arc serves from
replicas) or a 1/N availability hole.  Everything runs on one shared
:class:`~repro.exec.clock.VirtualClock`, so the kill window lands on
the same request index in every arm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import render_table
from repro.exec.clock import VirtualClock
from repro.exec.retry import RetryPolicy
from repro.experiments.common import QUICK, CorpusConfig, write_result
from repro.policies.registry import make
from repro.service.breaker import BreakerConfig
from repro.service.service import ServiceConfig
from repro.cluster.cluster import ClusterConfig, build_cluster
from repro.cluster.loadgen import (
    SERVED,
    ClusterLoadReport,
    run_cluster_load,
)
from repro.cluster.workload import make_cluster_workload

#: same contenders as X4: eager promotion vs lazy promotion vs QD+LP
POLICIES = ["LRU", "FIFO-Reinsertion", "QD-LP-FIFO"]

#: virtual seconds between consecutive requests
TICK = 0.01

PHASE_NAMES = ("before", "during", "after")


@dataclass(frozen=True)
class ClusterScenario:
    """Workload + kill schedule for one cluster run (validated)."""

    shards: int = 4
    killed_shard: str = "s1"
    num_requests: int = 20000
    universe: int = 100_000
    zipf_alpha: float = 1.1
    shard_capacity: int = 500
    replicas: int = 1
    hot_key_threshold: int = 4
    front_cache_size: int = 16
    kill_start: float = 0.4     # fraction of the run
    kill_end: float = 0.7
    ttl_fraction: float = 0.5
    stale_fraction: float = 0.5
    backend_latency: float = 0.004   # per-fetch origin latency (virtual s)
    seed: int = 42

    def __post_init__(self) -> None:
        if self.shards < 2:
            raise ValueError(
                f"a kill experiment needs >= 2 shards, got {self.shards}")
        if self.num_requests < 1 or self.universe < 1:
            raise ValueError("num_requests and universe must be >= 1")
        if self.shard_capacity < 2:
            raise ValueError(
                f"shard_capacity must be >= 2, got {self.shard_capacity}")
        if not 0.0 <= self.kill_start < self.kill_end <= 1.0:
            raise ValueError(
                f"kill window must satisfy 0 <= start < end <= 1, "
                f"got [{self.kill_start}, {self.kill_end}]")
        valid = {f"s{i}" for i in range(self.shards)}
        if self.killed_shard not in valid:
            raise ValueError(
                f"killed_shard must be one of {sorted(valid)}, "
                f"got {self.killed_shard!r}")

    @property
    def duration(self) -> float:
        """Virtual length of the whole run in seconds."""
        return self.num_requests * TICK

    def window(self) -> Tuple[float, float]:
        """The kill window in virtual seconds."""
        return (self.kill_start * self.duration,
                self.kill_end * self.duration)


@dataclass
class ClusterOutageRow:
    """One (policy, replication) arm's measurements."""

    policy: str
    replicas: int
    report: ClusterLoadReport

    @property
    def availability(self) -> float:
        return self.report.availability

    @property
    def effective_hit_ratio(self) -> float:
        return self.report.effective_hit_ratio

    def phase_availability(self) -> Dict[str, float]:
        """Availability before / during / after the kill window."""
        out: Dict[str, float] = {}
        for name, delta in zip(PHASE_NAMES, self.report.phases()):
            total = delta["requests"]
            served = sum(delta[outcome] for outcome in SERVED)
            out[name] = served / total if total else 0.0
        return out


@dataclass
class ClusterOutageResult:
    """Every arm plus the scenario they shared."""

    rows: List[ClusterOutageRow]
    scenario: ClusterScenario

    def row(self, policy: str, replicas: int) -> ClusterOutageRow:
        for row in self.rows:
            if row.policy == policy and row.replicas == replicas:
                return row
        raise KeyError(f"no row for ({policy!r}, replicas={replicas})")

    def render(self) -> str:
        start, end = self.scenario.window()
        headers = ["policy", "replicas", "availability",
                   "avail (during)", "eff. hit ratio", "replica hits",
                   "errors", "p99 (ms)"]
        body = []
        for row in self.rows:
            phases = row.phase_availability()
            body.append([
                row.policy,
                row.replicas,
                row.availability,
                phases["during"],
                row.effective_hit_ratio,
                row.report.outcomes["replica_hit"],
                row.report.outcomes["error"],
                row.report.latency_p99 * 1e3,
            ])
        return render_table(
            headers, body,
            title=f"X3-cluster: killing shard "
                  f"{self.scenario.killed_shard} of "
                  f"{self.scenario.shards} "
                  f"(t={start:.0f}s..{end:.0f}s of "
                  f"{self.scenario.duration:.0f}s, "
                  f"{self.scenario.num_requests} requests)",
            precision=4)


def run_arm(policy_name: str, replicas: int, scenario: ClusterScenario,
            keys: List[str]) -> ClusterOutageRow:
    """Replay the scenario through one (policy, replication) cluster."""
    start, end = scenario.window()
    clock = VirtualClock()
    cluster = build_cluster(
        lambda: make(policy_name, scenario.shard_capacity),
        shards=scenario.shards,
        config=ClusterConfig(
            replicas=replicas,
            hot_key_threshold=scenario.hot_key_threshold,
            front_cache_size=scenario.front_cache_size,
        ),
        service_config=ServiceConfig(
            ttl=scenario.ttl_fraction * scenario.duration,
            stale_ttl=scenario.stale_fraction * scenario.duration,
            retry=RetryPolicy(max_attempts=2, base_delay=0.005,
                              timeout=None),
            breaker=BreakerConfig(failure_threshold=5,
                                  reset_timeout=2.0),
        ),
        clock=clock,
    )
    if scenario.backend_latency:
        for plan in cluster.plans.values():
            plan.base_latency(scenario.backend_latency)
    cluster.kill(scenario.killed_shard, start, end)
    report = run_cluster_load(cluster, keys, threads=1, tick=TICK,
                              checkpoints=[start, end])
    report.check_accounting()
    cluster.metrics.check_conservation()
    return ClusterOutageRow(policy=policy_name, replicas=replicas,
                            report=report)


def run(config: CorpusConfig = QUICK,
        scenario: Optional[ClusterScenario] = None) -> ClusterOutageResult:
    """Run the shard-kill comparison and persist the rendered table.

    Each policy runs twice -- with the scenario's replication and with
    replication disabled -- so the table shows the availability gap a
    replica buys at identical hit-ratio economics.
    """
    if scenario is None:
        scenario = ClusterScenario(
            num_requests=max(2000, int(20000 * config.scale)),
            universe=max(1000, int(100_000 * config.scale)),
            shard_capacity=max(50, int(500 * config.scale)),
        )
    workload = make_cluster_workload(
        scenario.num_requests, universe=scenario.universe,
        alpha=scenario.zipf_alpha, seed=scenario.seed)
    rows = []
    for name in POLICIES:
        for replicas in (scenario.replicas, 0):
            rows.append(run_arm(name, replicas, scenario, workload.keys))
    result = ClusterOutageResult(rows=rows, scenario=scenario)
    write_result("outage-cluster", result.render())
    return result


__all__ = [
    "PHASE_NAMES",
    "POLICIES",
    "TICK",
    "ClusterOutageResult",
    "ClusterOutageRow",
    "ClusterScenario",
    "run",
    "run_arm",
]
