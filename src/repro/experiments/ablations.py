"""Experiments A1-A3 -- ablations of the design choices (paper §5).

The paper's discussion section singles out three design parameters:

* **A1 Probationary-queue size.**  QD uses a *tiny fixed* 10 % FIFO,
  in contrast to 2Q-style designs that use 25-50 %.  The paper argues
  bigger is not better; the sweep checks where the sweet spot lies.
* **A2 Ghost-queue size.**  The ghost stores "as many entries as the
  main cache".  Disabling it (factor 0) removes QD's safety net for
  wrongly-demoted objects; oversizing it admits stale history.
* **A3 CLOCK bit width.**  One visited bit is enough for most traces,
  but the social-network-like high-reuse workloads need two (§3); a
  third adds little.

Each ablation reports the mean miss-ratio reduction from FIFO across a
corpus slice, per parameter value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import miss_ratio_reduction
from repro.analysis.tables import render_table
from repro.core.clock import KBitClock
from repro.core.qdlpfifo import QDLPFIFO
from repro.experiments.common import QUICK, CorpusConfig, write_result
from repro.policies.fifo import FIFO
from repro.policies.lru import LRU
from repro.sim.simulator import simulate
from repro.sim.runner import LARGE_FRACTION
from repro.traces.trace import Trace

Factory = Callable[[int], object]


@dataclass
class AblationResult:
    """Mean reduction-from-FIFO per swept parameter value."""

    title: str
    parameter: str
    #: parameter value -> (mean reduction from FIFO, win rate vs reference)
    outcomes: Dict[object, Tuple[float, float]]
    reference: str

    def best(self):
        """The parameter value with the highest mean reduction."""
        return max(self.outcomes, key=lambda v: self.outcomes[v][0])

    def render(self) -> str:
        body = [[str(value), 100.0 * mean, 100.0 * wins]
                for value, (mean, wins) in self.outcomes.items()]
        return render_table(
            [self.parameter, "mean reduction from FIFO (%)",
             f"% traces beating {self.reference}"],
            body, title=self.title, precision=1)


def _sweep(
    variants: Dict[object, Factory],
    traces: Sequence[Trace],
    reference_factory: Factory,
    size_fraction: float,
) -> Dict[object, Tuple[float, float]]:
    """Mean reduction from FIFO and win rate vs a reference policy."""
    outcomes: Dict[object, Tuple[float, float]] = {}
    fifo_mr: List[float] = []
    ref_mr: List[float] = []
    for trace in traces:
        capacity = trace.cache_size(size_fraction)
        fifo_mr.append(simulate(FIFO(capacity), trace).miss_ratio)
        ref_mr.append(simulate(reference_factory(capacity), trace).miss_ratio)

    for value, factory in variants.items():
        reductions = []
        wins = 0
        for i, trace in enumerate(traces):
            capacity = trace.cache_size(size_fraction)
            mr = simulate(factory(capacity), trace).miss_ratio
            reductions.append(miss_ratio_reduction(mr, fifo_mr[i]))
            if mr < ref_mr[i]:
                wins += 1
        outcomes[value] = (float(np.mean(reductions)), wins / len(traces))
    return outcomes


def run_probation_sweep(
    config: CorpusConfig = QUICK,
    fractions: Sequence[float] = (0.025, 0.05, 0.1, 0.2, 0.5),
    size_fraction: float = LARGE_FRACTION,
) -> AblationResult:
    """A1: sweep the probationary FIFO's share of the cache."""
    traces = config.build()
    variants = {
        f: (lambda capacity, f=f: QDLPFIFO(capacity, probation_fraction=f))
        for f in fractions
    }
    outcomes = _sweep(variants, traces, LRU, size_fraction)
    result = AblationResult(
        title="A1: QD-LP-FIFO probationary-queue size sweep "
              f"(large cache size, {len(traces)} traces)",
        parameter="probation fraction",
        outcomes=outcomes,
        reference="LRU",
    )
    write_result("ablation_probation", result.render())
    return result


def run_ghost_sweep(
    config: CorpusConfig = QUICK,
    factors: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
    size_fraction: float = LARGE_FRACTION,
) -> AblationResult:
    """A2: sweep the ghost queue's size (x main-cache entries)."""
    traces = config.build()
    variants = {
        g: (lambda capacity, g=g: QDLPFIFO(capacity, ghost_factor=g))
        for g in factors
    }
    outcomes = _sweep(variants, traces, LRU, size_fraction)
    result = AblationResult(
        title="A2: QD-LP-FIFO ghost-queue size sweep "
              f"(large cache size, {len(traces)} traces)",
        parameter="ghost factor",
        outcomes=outcomes,
        reference="LRU",
    )
    write_result("ablation_ghost", result.render())
    return result


def run_clock_bits_sweep(
    config: CorpusConfig = QUICK,
    bits: Sequence[int] = (1, 2, 3),
    size_fraction: float = LARGE_FRACTION,
) -> AblationResult:
    """A3: sweep the CLOCK counter width (vs LRU win rate).

    Run it with ``config.scaled(families=("socialnet",))`` to see the
    paper's §3 observation that high-reuse workloads need >= 2 bits.
    """
    traces = config.build()
    variants = {
        b: (lambda capacity, b=b: KBitClock(capacity, bits=b))
        for b in bits
    }
    outcomes = _sweep(variants, traces, LRU, size_fraction)
    slice_label = ("+".join(config.families) if config.families
                   else "full corpus")
    result = AblationResult(
        title="A3: CLOCK bit-width sweep "
              f"(large cache size, {len(traces)} traces, {slice_label})",
        parameter="bits",
        outcomes=outcomes,
        reference="LRU",
    )
    artifact = "ablation_clockbits"
    if config.families:
        artifact += "_" + "_".join(config.families)
    write_result(artifact, result.render())
    return result


def run_lp_technique_study(
    config: CorpusConfig = QUICK,
    size_fraction: float = LARGE_FRACTION,
) -> AblationResult:
    """A4: compare the §5 Lazy Promotion techniques.

    Strict LP (reinsertion at eviction: FIFO-Reinsertion, 2-bit CLOCK)
    against the production relaxations the paper lists -- periodic
    promotion (FrozenHot) and promote-old-only (CacheLib) -- with LRU
    as the eager-promotion reference.  All of them should land within
    a few points of LRU on miss ratio while doing a fraction of its
    promotion work (see the X1 throughput bench for that half).
    """
    from repro.core.clock import FIFOReinsertion
    from repro.core.lp_variants import PeriodicPromotionLRU, PromoteOldOnlyLRU

    traces = config.build()
    variants = {
        "FIFO-Reinsertion": FIFOReinsertion,
        "2-bit-CLOCK": (lambda c: KBitClock(c, bits=2)),
        "PeriodicPromotion-LRU": PeriodicPromotionLRU,
        "PromoteOldOnly-LRU": PromoteOldOnlyLRU,
        "LRU (eager)": LRU,
    }
    outcomes = _sweep(variants, traces, LRU, size_fraction)
    result = AblationResult(
        title="A4: Lazy Promotion techniques "
              f"(large cache size, {len(traces)} traces)",
        parameter="technique",
        outcomes=outcomes,
        reference="LRU",
    )
    write_result("ablation_lp_techniques", result.render())
    return result


def run_ttl_sweep(
    config: CorpusConfig = QUICK,
    ttls: Sequence[int] = (0, 20_000, 5_000, 1_000),
    size_fraction: float = LARGE_FRACTION,
) -> AblationResult:
    """A7: sweep TTLs (paper §4: short TTLs make data short-lived).

    Each trace's key space is rewritten under lazy TTL expiry
    (``repro.traces.ttl.apply_ttl``; TTL 0 = no expiry) and QD-LP-FIFO
    is compared against FIFO/LRU.  Moderate TTLs barely dent QD's
    advantage; *extreme* TTLs (comparable to the reuse window) flood
    every policy with compulsory misses and surface the QD filter's
    double-miss cost, converging everything toward FIFO -- the regime
    where eviction stops mattering and admission/expiry dominates.
    """
    from repro.traces.ttl import apply_ttl
    from repro.traces.trace import Trace

    base_traces = config.build()
    outcomes: Dict[object, Tuple[float, float]] = {}
    for ttl in ttls:
        traces = [
            Trace(name=f"{t.name}-ttl{ttl}",
                  keys=apply_ttl(t, ttl, jitter=0.3, seed=1),
                  family=t.family, group=t.group)
            for t in base_traces
        ]
        sweep = _sweep({ttl: (lambda c: QDLPFIFO(c))}, traces, LRU,
                       size_fraction)
        outcomes[ttl] = sweep[ttl]
    result = AblationResult(
        title="A7: QD-LP-FIFO under TTL-induced churn "
              f"(large cache size, {len(base_traces)} traces; "
              "TTL 0 = no expiry)",
        parameter="ttl (requests)",
        outcomes=outcomes,
        reference="LRU",
    )
    write_result("ablation_ttl", result.render())
    return result


def run_adaptivity_study(
    config: CorpusConfig = QUICK,
    size_fraction: float = LARGE_FRACTION,
) -> AblationResult:
    """A8: fixed 10% probation vs hill-climbing adaptation (paper §5).

    The paper argues adaptive queue sizing (ARC-style) is "not
    optimal" and deliberately fixes the probationary queue at 10%.
    This study pits that fixed design against an adaptive controller
    over the same structure; reproducing the paper's judgement means
    the adaptive variant buys little or nothing on average.
    """
    from repro.core.adaptive_qd import AdaptiveQDLPFIFO

    traces = config.build()
    variants = {
        "fixed-10%": (lambda c: QDLPFIFO(c)),
        "adaptive": (lambda c: AdaptiveQDLPFIFO(c)),
    }
    outcomes = _sweep(variants, traces, LRU, size_fraction)
    result = AblationResult(
        title="A8: fixed vs adaptive probationary sizing "
              f"(large cache size, {len(traces)} traces)",
        parameter="controller",
        outcomes=outcomes,
        reference="LRU",
    )
    write_result("ablation_adaptivity", result.render())
    return result


__all__ = [
    "AblationResult",
    "run_probation_sweep",
    "run_ghost_sweep",
    "run_clock_bits_sweep",
    "run_lp_technique_study",
    "run_ttl_sweep",
    "run_adaptivity_study",
]
