"""One module per paper table/figure (see DESIGN.md's experiment index).

* :mod:`repro.experiments.table1` -- T1, the dataset inventory.
* :mod:`repro.experiments.fig2` -- F2/F2e, LP-FIFO vs LRU win fractions.
* :mod:`repro.experiments.fig3` -- F3 + T2, resource consumption study.
* :mod:`repro.experiments.fig5` -- F5, QD-enhanced algorithms.
* :mod:`repro.experiments.ablations` -- A1-A3 design-choice sweeps.
* :mod:`repro.experiments.extensions` -- X2, S3-FIFO and SIEVE.
* :mod:`repro.experiments.throughput` -- X1, the throughput argument.
* :mod:`repro.experiments.outage` -- X3, availability across a backend
  outage through the service layer.
* :mod:`repro.experiments.outage_cluster` -- X3-cluster, killing one
  shard of a consistent-hash cluster with and without replication.
* :mod:`repro.experiments.tiered` -- X7, the DRAM -> flash -> backend
  hierarchy: QD in DRAM cuts flash writes at equal-or-better hit ratio.
"""

from repro.experiments import (
    ablations,
    size_sweep,
    sized_study,
    scalability,
    extensions,
    fig2,
    fig3,
    fig5,
    outage,
    outage_cluster,
    table1,
    throughput,
    tiered,
)
from repro.experiments.common import FULL, QUICK, TINY, CorpusConfig

__all__ = [
    "ablations",
    "size_sweep",
    "sized_study",
    "scalability",
    "extensions",
    "fig2",
    "fig3",
    "fig5",
    "outage",
    "outage_cluster",
    "table1",
    "throughput",
    "tiered",
    "FULL",
    "QUICK",
    "TINY",
    "CorpusConfig",
]
