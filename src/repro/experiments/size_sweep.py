"""Experiment A5 -- the paper's "(not shown)" size-sweep claim (§4).

The paper: "when the cache size is too large, e.g., 80% of the number
of objects in the trace, adding QD may increase the miss ratio (not
shown)."  This experiment shows it: miss-ratio curves for 2-bit CLOCK
(the LP base), QD-LP-FIFO (LP + QD), LRU and ARC across cache sizes
from 0.1% to 80% of the unique objects, averaged over a corpus slice.

Expected shape: QD's advantage over the plain LP base is largest at
mid sizes and shrinks -- possibly inverting -- as the cache approaches
the working-set size, where evicting *anything* early is a mistake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.tables import render_table
from repro.experiments.common import QUICK, CorpusConfig, write_result
from repro.policies.registry import make
from repro.sim.fast.batch import BatchRunner
from repro.sim.simulator import simulate

POLICIES = ["LRU", "ARC", "2-bit-CLOCK", "QD-LP-FIFO"]
DEFAULT_FRACTIONS = (0.001, 0.01, 0.05, 0.1, 0.3, 0.5, 0.8)


@dataclass
class SizeSweepResult:
    """Mean miss ratio per (policy, size fraction) over the slice."""

    fractions: Sequence[float]
    mean_miss_ratio: Dict[str, List[float]]   # policy -> per-fraction
    num_traces: int

    def qd_gain(self, fraction: float) -> float:
        """QD-LP-FIFO's relative gain over 2-bit CLOCK at *fraction*."""
        index = list(self.fractions).index(fraction)
        base = self.mean_miss_ratio["2-bit-CLOCK"][index]
        qd = self.mean_miss_ratio["QD-LP-FIFO"][index]
        if base <= 0:
            return 0.0
        return (base - qd) / base

    def render(self) -> str:
        headers = (["policy"]
                   + [f"{100 * f:g}%" for f in self.fractions])
        body = [[policy] + self.mean_miss_ratio[policy]
                for policy in POLICIES]
        gains = (["QD gain over 2-bit CLOCK"]
                 + [f"{100 * self.qd_gain(f):+.1f}%"
                    for f in self.fractions])
        table = render_table(
            headers, body + [gains],
            title=f"A5: mean miss ratio vs cache size "
                  f"({self.num_traces} traces); the paper's '(not shown)' "
                  "claim is the right-hand columns",
        )
        return table


def run(config: CorpusConfig = QUICK,
        fractions: Sequence[float] = DEFAULT_FRACTIONS) -> SizeSweepResult:
    """Run the size sweep over the corpus slice."""
    traces = config.build()
    sums: Dict[str, np.ndarray] = {
        policy: np.zeros(len(fractions)) for policy in POLICIES}
    runner = BatchRunner()
    for trace in traces:
        # One interning per trace, shared across every (policy, size)
        # cell; policies without a fast engine (ARC) fall back to the
        # reference simulator.
        for j, fraction in enumerate(fractions):
            capacity = max(10, round(trace.num_unique * fraction))
            for policy_name in POLICIES:
                outcome = runner.run(policy_name, trace, max(capacity, 2))
                if outcome is not None:
                    sums[policy_name][j] += outcome.miss_ratio
                else:
                    policy = make(policy_name, max(capacity, 2))
                    sums[policy_name][j] += simulate(policy, trace).miss_ratio
    result = SizeSweepResult(
        fractions=tuple(fractions),
        mean_miss_ratio={policy: list(values / len(traces))
                         for policy, values in sums.items()},
        num_traces=len(traces),
    )
    write_result("size_sweep", result.render())
    return result


__all__ = ["SizeSweepResult", "POLICIES", "DEFAULT_FRACTIONS", "run"]
