"""Experiment A6 -- size-aware Lazy Promotion & Quick Demotion (§5).

The paper's closing future-work item, built and measured: attach
heavy-tailed (log-normal) object sizes to web-family traces and
compare byte-budgeted policies at 10 % of the byte footprint:

* Sized-FIFO / Sized-LRU -- the §2 baselines, size-aware;
* Sized 2-bit CLOCK -- size-aware Lazy Promotion;
* Sized-QD-LP-FIFO -- size-aware LP + QD;
* GDSF -- the classic size-aware web policy (strong baseline).

Expected shape: LP beats LRU on both metrics; QD improves LP further;
GDSF wins the *object* miss ratio by favouring small objects, while
Sized-QD-LP-FIFO is the strongest on the *byte* miss ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.tables import render_table
from repro.experiments.common import QUICK, CorpusConfig, write_result
from repro.policies.registry import make_sized
from repro.sized.simulator import simulate_sized
from repro.sized.workloads import attach_sizes, unique_bytes

#: Canonical unified-registry names; built via make_sized, so this
#: study exercises exactly what `repro simulate`/`repro hierarchy` can.
POLICIES = (
    "Sized-FIFO",
    "Sized-LRU",
    "Sized-2-bit-CLOCK",
    "Sized-QD-LP-FIFO",
    "GDSF",
)

WEB_FAMILIES = ("cdn", "tencent_photo", "wiki", "twitter")


@dataclass
class SizedStudyResult:
    """Mean object/byte miss ratios per policy over the web slice."""

    object_miss_ratio: Dict[str, float]
    byte_miss_ratio: Dict[str, float]
    num_traces: int
    size_fraction: float

    def render(self) -> str:
        body = [[name, self.object_miss_ratio[name],
                 self.byte_miss_ratio[name]]
                for name in POLICIES]
        return render_table(
            ["policy", "object miss ratio", "byte miss ratio"],
            body,
            title=(f"A6: size-aware LP/QD on {self.num_traces} web traces "
                   f"(log-normal sizes, cache = "
                   f"{self.size_fraction:.0%} of byte footprint)"))


def run(config: CorpusConfig = QUICK, size_fraction: float = 0.1,
        size_seed: int = 1) -> SizedStudyResult:
    """Run the size-aware comparison on the web families."""
    traces = config.scaled(families=WEB_FAMILIES).build()
    sums_obj = {name: 0.0 for name in POLICIES}
    sums_byte = {name: 0.0 for name in POLICIES}
    for trace in traces:
        sized = attach_sizes(trace, "lognormal", seed=size_seed)
        capacity = max(4096, round(unique_bytes(sized) * size_fraction))
        for name in POLICIES:
            result = simulate_sized(make_sized(name, capacity), sized)
            sums_obj[name] += result.miss_ratio
            sums_byte[name] += result.byte_miss_ratio
    count = len(traces)
    result = SizedStudyResult(
        object_miss_ratio={n: s / count for n, s in sums_obj.items()},
        byte_miss_ratio={n: s / count for n, s in sums_byte.items()},
        num_traces=count,
        size_fraction=size_fraction,
    )
    write_result("sized_study", result.render())
    return result


__all__ = ["SizedStudyResult", "POLICIES", "WEB_FAMILIES", "run"]
