"""Cache event tracing: bounded ring buffers + derived histograms.

:class:`CacheTracer` is a :class:`~repro.core.base.CacheListener` that
records the four event streams the paper's analysis cares about --
**admit**, **evict**, **promote** (the structural reordering §2 prices
at six locked pointer updates in a production LRU) and **ghost-hit**
(a miss rescued by the quick-demotion ghost, Fig. 4) -- into bounded
ring buffers, so tracing an arbitrarily long simulation uses constant
memory while total counts stay exact.

Time is the tracer's logical request clock: it advances by one on every
hit or admission, i.e. once per request, which makes ``evict_time -
admit_time`` the paper's *space-time* residency unit (Fig. 3).  When a
:class:`~repro.obs.metrics.MetricsRegistry` is supplied, the tracer
feeds it live:

* ``cache_events_total{event=...}`` counters for all four streams,
* a ``cache_eviction_age_requests`` histogram of demotion ages, split
  by whether the tenure ever hit (``tenure="zero-hit"`` vs ``"hit"``)
  -- the quick-demotion lens of Fig. 2e/3.

Attach a tracer via ``SimOptions(listeners=(tracer,))`` or directly
with ``policy.add_listener(tracer)``.  Listeners force the reference
simulation path (the vectorized engines cannot emit per-event
callbacks), so tracing is opt-in by construction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.base import CacheListener, Key
from repro.obs.metrics import DEFAULT_AGE_BUCKETS, MetricsRegistry

ADMIT = "admit"
EVICT = "evict"
PROMOTE = "promote"
GHOST_HIT = "ghost-hit"

EVENT_KINDS = (ADMIT, EVICT, PROMOTE, GHOST_HIT)


@dataclass(frozen=True)
class CacheEvent:
    """One traced cache event, stamped with the logical request time."""

    time: int
    kind: str
    key: Key


class CacheTracer(CacheListener):
    """Record admit/evict/promote/ghost-hit streams with bounded memory.

    Parameters
    ----------
    ring:
        Events retained per stream (oldest dropped first).  Totals in
        :attr:`counts` are exact regardless of ring size.
    registry:
        Optional :class:`MetricsRegistry` to feed counters and the
        eviction-age histogram live.
    """

    def __init__(self, ring: int = 1024,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if ring < 1:
            raise ValueError(f"ring must be >= 1, got {ring}")
        self.ring = ring
        self.now = 0  # logical request clock
        self._rings: Dict[str, Deque[CacheEvent]] = {
            kind: deque(maxlen=ring) for kind in EVENT_KINDS}
        self.counts: Dict[str, int] = {kind: 0 for kind in EVENT_KINDS}
        #: key -> (admit_time, hits during the current tenure)
        self._open: Dict[Key, Tuple[int, int]] = {}
        self._ages_zero_hit: List[int] = []
        self._ages_hit: List[int] = []

        self._registry = registry
        if registry is not None:
            self._event_counters = {
                kind: registry.counter("cache_events_total", event=kind)
                for kind in EVENT_KINDS}
            self._age_hist = {
                "zero-hit": registry.histogram(
                    "cache_eviction_age_requests",
                    buckets=DEFAULT_AGE_BUCKETS, tenure="zero-hit"),
                "hit": registry.histogram(
                    "cache_eviction_age_requests",
                    buckets=DEFAULT_AGE_BUCKETS, tenure="hit"),
            }
        else:
            self._event_counters = None
            self._age_hist = None

    # ------------------------------------------------------------------
    # CacheListener interface
    # ------------------------------------------------------------------
    def _emit(self, kind: str, key: Key) -> None:
        self._rings[kind].append(CacheEvent(self.now, kind, key))
        self.counts[kind] += 1
        if self._event_counters is not None:
            self._event_counters[kind].inc()

    def on_hit(self, key: Key) -> None:
        self.now += 1
        entry = self._open.get(key)
        if entry is not None:
            self._open[key] = (entry[0], entry[1] + 1)

    def on_admit(self, key: Key) -> None:
        self.now += 1
        self._open[key] = (self.now, 0)
        self._emit(ADMIT, key)

    def on_evict(self, key: Key) -> None:
        admit_time, hits = self._open.pop(key, (self.now, 0))
        age = self.now - admit_time
        if hits == 0:
            self._ages_zero_hit.append(age)
        else:
            self._ages_hit.append(age)
        if self._age_hist is not None:
            self._age_hist["zero-hit" if hits == 0 else "hit"].observe(age)
        self._emit(EVICT, key)

    def on_promote(self, key: Key) -> None:
        self._emit(PROMOTE, key)

    def on_ghost_hit(self, key: Key) -> None:
        self._emit(GHOST_HIT, key)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def events(self, kind: str) -> List[CacheEvent]:
        """The retained (ring-bounded) events of one stream, oldest first."""
        if kind not in self._rings:
            raise KeyError(
                f"unknown event kind {kind!r}; known: {EVENT_KINDS}")
        return list(self._rings[kind])

    def eviction_ages(self, zero_hit_only: bool = False) -> List[int]:
        """Residency ages of completed tenures (requests).

        ``zero_hit_only=True`` restricts to tenures that never hit --
        the unpopular objects quick demotion targets (Fig. 2e).
        """
        if zero_hit_only:
            return list(self._ages_zero_hit)
        return self._ages_zero_hit + self._ages_hit

    def mean_eviction_age(self, zero_hit_only: bool = False) -> float:
        """Mean demotion age; 0.0 when no tenure has completed yet.

        Zero (not NaN): :meth:`summary` feeds snapshot rows that must
        stay strict-JSON serialisable and diffable -- ``NaN != NaN``
        would make every fresh-tracer snapshot a spurious regression.
        """
        ages = self.eviction_ages(zero_hit_only)
        if not ages:
            return 0.0
        return sum(ages) / len(ages)

    def summary(self) -> Dict[str, float]:
        """Scalar digest: per-stream totals plus mean demotion ages."""
        out: Dict[str, float] = {f"{kind}s": float(count)
                                 for kind, count in self.counts.items()}
        out["requests"] = float(self.now)
        out["mean_eviction_age"] = self.mean_eviction_age()
        out["mean_zero_hit_eviction_age"] = self.mean_eviction_age(
            zero_hit_only=True)
        return out


__all__ = [
    "ADMIT",
    "EVICT",
    "EVENT_KINDS",
    "GHOST_HIT",
    "PROMOTE",
    "CacheEvent",
    "CacheTracer",
]
