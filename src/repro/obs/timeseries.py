"""Windowed time-series sampling of registry metrics.

End-of-run snapshots (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`)
answer *how much*; the paper's claims are about *when* -- quick demotion
works because one-hit wonders leave the cache early, and a miss-ratio
transient after a working-set shift is invisible in a point total.
:class:`TimeSeriesRecorder` adds the temporal axis: it samples metrics
on a fixed **virtual-time** cadence (every N requests in the simulator,
every M clock seconds in the service layer) and keeps, per series, a
bounded ring of ``(time, window, value)`` points:

* **counters** record the *windowed delta* -- e.g. misses per window,
  which divided by requests per window is the windowed miss ratio;
* **gauges** record the instantaneous value at the sample instant;
* **histograms** record windowed ``:count`` and ``:sum`` deltas, whose
  ratio is the windowed mean (e.g. mean eviction age per window).

Memory is bounded two ways: with ``downsample=True`` (default) a full
ring merges adjacent points pairwise -- halving resolution, doubling
the effective window, never forgetting the start of the run; with
``downsample=False`` the ring drops oldest points (a sliding window).

Three feeding modes cover the repo's runtimes:

* :meth:`tick` -- the reference simulation loop advances the request
  clock one request at a time; sampling triggers on cadence boundaries.
* :meth:`maybe_sample` -- the service layer passes its
  :class:`~repro.exec.clock.Clock` time after each request.
* :meth:`record_mask` -- the vectorized engines produce a per-request
  hit mask; the recorder derives windowed hit/miss series from it
  post-hoc with one ``reduceat`` per series (zero per-request work,
  which is how the <5 % overhead gate is met at cadence 1/1000).

Series are keyed ``name{label=value,...}`` (histograms additionally
suffixed ``:count``/``:sum``), exported as JSONL rows --
``{"series", "kind", "t", "window", "value"}`` -- that the journal's
``timeseries`` line, the ``repro timeseries`` CLI, and ``repro diff``
all share.
"""

from __future__ import annotations

import csv
import io
import json
import threading
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.obs.metrics import MetricsRegistry

PathLike = Union[str, Path]

#: (time, window, value) -- one point of one series.
Point = Tuple[float, float, float]

#: Block characters for :func:`sparkline`, low to high.
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def series_key(name: str, labels: Optional[dict] = None,
               suffix: str = "") -> str:
    """The canonical ``name{k=v,...}`` identity of one series."""
    label_text = ",".join(f"{k}={v}"
                          for k, v in sorted((labels or {}).items()))
    base = f"{name}{{{label_text}}}" if label_text else name
    return base + suffix


class _Series:
    """One bounded series: points plus its downsampling level."""

    __slots__ = ("key", "kind", "points", "last_cumulative")

    def __init__(self, key: str, kind: str) -> None:
        self.key = key
        self.kind = kind
        self.points: List[Point] = []
        self.last_cumulative = 0.0


class TimeSeriesRecorder:
    """Sample registry metrics into bounded windowed series.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` to sample (optional; probes and
        :meth:`record_mask` work without one).
    cadence:
        Virtual-time units between samples: requests for
        :meth:`tick`/:meth:`record_mask`, clock seconds for
        :meth:`maybe_sample`.
    maxlen:
        Points retained per series before downsampling (or dropping).
    downsample:
        ``True`` merges adjacent points pairwise when a series fills
        (halved resolution, full run coverage); ``False`` drops the
        oldest points (sliding window).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 cadence: float = 1000, maxlen: int = 512,
                 downsample: bool = True) -> None:
        if cadence <= 0:
            raise ValueError(f"cadence must be > 0, got {cadence}")
        if maxlen < 2:
            raise ValueError(f"maxlen must be >= 2, got {maxlen}")
        self.registry = registry
        self.cadence = float(cadence)
        self.maxlen = int(maxlen)
        self.downsample = downsample
        self.samples = 0
        self._lock = threading.Lock()
        self._series: Dict[str, _Series] = {}
        self._probes: List[Callable[[], Dict[str, float]]] = []
        self._clock = 0.0        # request clock driven by tick()
        self._epoch: Optional[float] = None   # first maybe_sample() time
        self._next_due = self.cadence
        self._last_sample_at = 0.0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def add_probe(self, probe: Callable[[], Dict[str, float]]) -> None:
        """Register an extra source of *cumulative* counter values.

        *probe* returns ``{series_key: cumulative_value}``; each sample
        records the windowed delta, exactly like a registry counter.
        The simulator uses a probe to expose its per-run hit/miss
        totals without paying per-request counter updates.
        """
        self._probes.append(probe)

    def remove_probe(self, probe: Callable[[], Dict[str, float]]) -> None:
        """Unregister *probe* (no-op when it was never added)."""
        try:
            self._probes.remove(probe)
        except ValueError:
            pass

    def tick(self, n: int = 1) -> None:
        """Advance the request clock by *n*; sample on cadence crossings."""
        with self._lock:
            self._clock += n
            if self._clock >= self._next_due:
                self._sample_locked(self._clock)

    def maybe_sample(self, now: float) -> None:
        """Sample if *now* (external clock seconds) crossed the cadence.

        The first call anchors the epoch; sampling triggers every
        ``cadence`` seconds of the caller's clock after that.  Safe to
        call from many threads (the service layer does).
        """
        with self._lock:
            if self._epoch is None:
                self._epoch = now
                self._next_due = now + self.cadence
                return
            if now >= self._next_due:
                self._sample_locked(now)

    def sample(self, now: Optional[float] = None) -> None:
        """Force one sample at *now* (default: the internal clock)."""
        with self._lock:
            self._sample_locked(self._clock if now is None else now)

    def flush(self) -> None:
        """Sample the final partial window, if any time has accrued.

        Callers invoke this once at end of run so the tail of the trace
        (the requests after the last cadence boundary) is not lost;
        a run that ended exactly on a boundary records nothing extra.
        """
        with self._lock:
            if self._clock > self._last_sample_at:
                self._sample_locked(self._clock)

    def record_mask(self, mask: np.ndarray, warmup: int = 0,
                    **labels) -> None:
        """Derive windowed request/hit/miss series from a hit mask.

        *mask* is the per-request boolean hit mask a fast engine
        returns; requests before *warmup* are excluded (mirroring
        ``simulate``'s statistics contract).  Produces
        ``sim_requests_total``/``sim_hits_total``/``sim_misses_total``
        series carrying *labels*, on a time axis of post-warmup request
        indices -- all vectorized, no per-request Python work.
        """
        counted = np.asarray(mask[warmup:], dtype=np.int64)
        n = counted.size
        if n == 0:
            return
        step = max(1, int(self.cadence))
        edges = np.arange(0, n, step)
        hits = np.add.reduceat(counted, edges)
        sizes = np.minimum(edges + step, n) - edges
        times = ((edges + sizes).astype(np.float64)).tolist()
        windows = sizes.astype(np.float64).tolist()
        with self._lock:
            for name, values in (
                    ("sim_requests_total", sizes),
                    ("sim_hits_total", hits),
                    ("sim_misses_total", sizes - hits)):
                key = series_key(name, labels)
                series = self._get_series(key, "counter")
                # Batch extend + one shrink pass: per-point _append
                # calls would dominate the fast path's replay time.
                series.points.extend(
                    zip(times, windows, values.astype(np.float64).tolist()))
                self._shrink(series)
            self.samples += 1

    # ------------------------------------------------------------------
    # Sampling internals
    # ------------------------------------------------------------------
    def _collect_cumulative(self) -> Dict[str, Tuple[str, float]]:
        """``series_key -> (kind, cumulative-or-instant value)`` now."""
        out: Dict[str, Tuple[str, float]] = {}
        if self.registry is not None:
            for row in self.registry.snapshot():
                base = series_key(row["name"], row["labels"])
                if row["type"] == "histogram":
                    out[base + ":count"] = ("counter", float(row["count"]))
                    out[base + ":sum"] = ("counter", float(row["sum"]))
                elif row["type"] == "gauge":
                    out[base] = ("gauge", float(row["value"]))
                else:
                    out[base] = ("counter", float(row["value"]))
        for probe in self._probes:
            for key, value in probe().items():
                out[key] = ("counter", float(value))
        return out

    def _get_series(self, key: str, kind: str) -> _Series:
        series = self._series.get(key)
        if series is None:
            series = _Series(key, kind)
            self._series[key] = series
        return series

    def _sample_locked(self, now: float) -> None:
        window = now - self._last_sample_at
        if window <= 0:
            window = self.cadence
        for key, (kind, value) in self._collect_cumulative().items():
            series = self._get_series(key, kind)
            if kind == "gauge":
                point = (now, window, value)
            else:
                point = (now, window, value - series.last_cumulative)
                series.last_cumulative = value
            self._append(series, point)
        self._last_sample_at = now
        # Advance in whole cadence steps so a burst of virtual time
        # (one slow chunk) does not trigger a flurry of samples.
        while self._next_due <= now:
            self._next_due += self.cadence
        self.samples += 1

    def _append(self, series: _Series, point: Point) -> None:
        series.points.append(point)
        if len(series.points) > self.maxlen:
            self._shrink(series)

    def _shrink(self, series: _Series) -> None:
        """Bound *series* to ``maxlen``: pairwise-merge or ring-drop."""
        points = series.points
        if not self.downsample:
            if len(points) > self.maxlen:
                del points[:len(points) - self.maxlen]
            return
        while len(points) > self.maxlen:
            merged: List[Point] = []
            for i in range(0, len(points) - 1, 2):
                (t0, w0, v0), (t1, w1, v1) = points[i], points[i + 1]
                if series.kind == "gauge":
                    merged.append((t1, w0 + w1, v1))
                else:
                    merged.append((t1, w0 + w1, v0 + v1))
            if len(points) % 2:
                merged.append(points[-1])
            series.points = points = merged

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def series_names(self) -> List[str]:
        """Every recorded series key, sorted."""
        with self._lock:
            return sorted(self._series)

    def series(self, key: str) -> List[Point]:
        """The ``(time, window, value)`` points of one series."""
        with self._lock:
            found = self._series.get(key)
            if found is None:
                raise KeyError(
                    f"no series {key!r}; recorded: {sorted(self._series)}")
            return list(found.points)

    def ratio(self, numerator: str, denominator: str
              ) -> List[Tuple[float, float]]:
        """Pointwise windowed ratio of two series (zero windows skipped).

        The workhorse of the derived curves: miss ratio is
        ``ratio(sim_misses_total{...}, sim_requests_total{...})``, the
        windowed mean eviction age is
        ``ratio(cache_eviction_age_requests{...}:sum, ...:count)``, the
        one-hit-wonder rate is the zero-hit eviction count over all
        evictions.
        """
        num = {t: v for t, _, v in self.series(numerator)}
        out: List[Tuple[float, float]] = []
        for t, _, den in self.series(denominator):
            if den and t in num:
                out.append((t, num[t] / den))
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_rows(self) -> List[dict]:
        """Every point as one flat JSONL-able row, series-sorted."""
        rows: List[dict] = []
        with self._lock:
            for key in sorted(self._series):
                series = self._series[key]
                for t, window, value in series.points:
                    rows.append({"series": key, "kind": series.kind,
                                 "t": t, "window": window, "value": value})
        return rows

    def write_jsonl(self, path: PathLike) -> Path:
        """Write :meth:`to_rows` as JSON-lines; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("".join(json.dumps(row, sort_keys=True) + "\n"
                                for row in self.to_rows()))
        return path


# ----------------------------------------------------------------------
# Row-format helpers (CLI + diff side)
# ----------------------------------------------------------------------

def series_from_rows(rows: Iterable[dict]) -> Dict[str, List[Point]]:
    """Group exported rows back into ``{series_key: [(t, w, v), ...]}``."""
    out: Dict[str, List[Point]] = {}
    for row in rows:
        if not isinstance(row, dict) or "series" not in row:
            continue
        out.setdefault(row["series"], []).append(
            (float(row["t"]), float(row.get("window", 0.0)),
             float(row["value"])))
    for points in out.values():
        points.sort(key=lambda p: p[0])
    return out


def read_timeseries_jsonl(path: PathLike) -> List[dict]:
    """Load time-series rows from a JSONL file (torn lines skipped)."""
    rows: List[dict] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(row, dict) and {"series", "t", "value"} <= row.keys():
            rows.append(row)
    return rows


def sparkline(values: Iterable[float], width: int = 64) -> str:
    """*values* as one line of unicode block characters.

    Longer inputs are bucket-averaged down to *width* characters; the
    vertical scale is min..max of the rendered values.
    """
    data = [float(v) for v in values]
    if not data:
        return ""
    if len(data) > width:
        edges = np.linspace(0, len(data), width + 1).astype(int)
        data = [float(np.mean(data[lo:hi])) for lo, hi
                in zip(edges[:-1], edges[1:]) if hi > lo]
    lo, hi = min(data), max(data)
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[0] * len(data)
    top = len(SPARK_CHARS) - 1
    return "".join(SPARK_CHARS[round((v - lo) / span * top)] for v in data)


def render_sparklines(series_map: Dict[str, List[Point]],
                      width: int = 64) -> str:
    """An aligned min/mean/max + sparkline block over every series."""
    if not series_map:
        return "(no series)"
    lines: List[str] = []
    name_width = max(len(key) for key in series_map)
    for key in sorted(series_map):
        values = [v for _, _, v in series_map[key]]
        if not values:
            continue
        lines.append(
            f"{key:<{name_width}}  "
            f"min={min(values):<10.4g} "
            f"mean={sum(values) / len(values):<10.4g} "
            f"max={max(values):<10.4g} "
            f"n={len(values):<5d} "
            f"{sparkline(values, width)}")
    return "\n".join(lines)


def render_csv(series_map: Dict[str, List[Point]]) -> str:
    """Long-format CSV: ``series,t,window,value`` rows, series-sorted."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["series", "t", "window", "value"])
    for key in sorted(series_map):
        for t, window, value in series_map[key]:
            writer.writerow([key, t, window, value])
    return buffer.getvalue()


__all__ = [
    "SPARK_CHARS",
    "TimeSeriesRecorder",
    "read_timeseries_jsonl",
    "render_csv",
    "render_sparklines",
    "series_from_rows",
    "series_key",
    "sparkline",
]
