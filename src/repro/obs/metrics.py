"""Zero-dependency metrics primitives: counters, gauges, histograms.

The paper's argument is operational -- promotions per request, lock-free
throughput, availability under load -- so the repo needs one consistent
way to *count* those things across its three runtime layers (simulator,
sweep executor, cache service) instead of the per-subsystem dataclasses
and ad-hoc prints that grew with them.  :class:`MetricsRegistry` is that
single place, modelled on the stats pipelines of libCacheSim and
Cachelib but kept dependency-free and small:

* :class:`Counter` -- monotonically increasing count.
* :class:`Gauge` -- a value that goes up and down (breaker state,
  in-flight fetches).
* :class:`Histogram` -- fixed upper-bound buckets, cumulative on
  export (Prometheus semantics), for latencies, cell durations and
  eviction ages.

All metric types are thread-safe; instrumented hot paths pay one lock
acquisition plus one dict/bucket update per observation, and every
subsystem keeps instrumentation **opt-in** so uninstrumented runs pay
nothing (``benchmarks/check_obs_overhead.py`` enforces <5 % on the
fast-path benchmark).

Identity is ``(name, sorted label pairs)``: asking the registry for the
same name+labels returns the same metric object, asking for the same
name with a different *type* raises.  :meth:`MetricsRegistry.snapshot`
returns plain dict rows -- the one wire format all exporters
(:mod:`repro.obs.export`), the journal, and the CLI table consume.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

LabelPairs = Tuple[Tuple[str, str], ...]

#: Default latency buckets (seconds): 1ms .. ~16s, doubling.
DEFAULT_LATENCY_BUCKETS = tuple(0.001 * 2 ** i for i in range(15))

#: Default duration buckets (seconds) for sweep cells: 10ms .. ~82s.
DEFAULT_DURATION_BUCKETS = tuple(0.01 * 2 ** i for i in range(14))

#: Default age buckets (requests) for eviction-age histograms.
DEFAULT_AGE_BUCKETS = tuple(int(10 * 4 ** i) for i in range(10))


def exponential_buckets(start: float, factor: float,
                        count: int) -> Tuple[float, ...]:
    """``count`` bucket upper bounds growing geometrically from *start*."""
    if start <= 0:
        raise ValueError(f"start must be > 0, got {start}")
    if factor <= 1.0:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start * factor ** i for i in range(count))


def _label_pairs(labels: Dict[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared identity + locking for all metric types."""

    kind = "abstract"

    def __init__(self, name: str, labels: LabelPairs, help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()

    @property
    def label_dict(self) -> Dict[str, str]:
        """The metric's labels as a plain dict."""
        return dict(self.labels)

    def row(self) -> dict:
        """This metric as one snapshot row (see MetricsRegistry.snapshot)."""
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelPairs, help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def row(self) -> dict:
        return {"type": self.kind, "name": self.name,
                "labels": self.label_dict, "value": self.value}


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelPairs, help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to *value*."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract *amount* from the gauge."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def row(self) -> dict:
        return {"type": self.kind, "name": self.name,
                "labels": self.label_dict, "value": self.value}


class Histogram(_Metric):
    """Fixed-bucket histogram with Prometheus cumulative-export semantics.

    ``buckets`` are finite upper bounds, ascending; an implicit ``+Inf``
    bucket catches the rest.  Internally counts are per-bucket
    (non-cumulative); :meth:`row` exports them cumulatively, which is
    what both the Prometheus text format and the quantile estimator
    expect.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelPairs, help: str = "",
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        super().__init__(name, labels, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"bucket bounds must be strictly ascending, got {bounds}")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        # bucket index -> (exemplar trace id, observed value); first
        # observation to land in a bucket wins, so a deterministic run
        # always exports the same exemplar set.
        self._exemplars: Dict[int, Tuple[str, float]] = {}

    def observe(self, value: float, exemplar: Optional[str] = None) -> bool:
        """Record one observation.

        ``exemplar`` optionally offers a trace id for the bucket the
        value lands in; it is stored only if that bucket has none yet.
        Returns True when the exemplar was taken -- callers use this to
        pin the corresponding trace in the request tracer's buffer.
        """
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if exemplar is not None and index not in self._exemplars:
                self._exemplars[index] = (str(exemplar), value)
                return True
        return False

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper-bound, cumulative-count) pairs, ending with +Inf."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        out: List[Tuple[float, int]] = []
        for bound, count in zip(self.bounds, counts):
            total += count
            out.append((bound, total))
        out.append((float("inf"), total + counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimated *q*-quantile (upper bound of the covering bucket).

        Coarse by construction -- fixed buckets -- but monotone and
        cheap; the service layer keeps raw latency lists where exact
        percentiles matter.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        cumulative = self.cumulative()
        total = cumulative[-1][1]
        if total == 0:
            return 0.0
        rank = q * total
        for bound, running in cumulative:
            if running >= rank:
                # Clamp the overflow bucket to the largest finite bound
                # so callers get a usable number, not +Inf.
                return bound if bound != float("inf") else self.bounds[-1]
        return self.bounds[-1]  # pragma: no cover - defensive

    def row(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
            total_count = self._count
            exemplars = dict(self._exemplars)
        cumulative = []
        running = 0
        for count in counts[:-1]:
            running += count
            cumulative.append(running)
        row = {"type": self.kind, "name": self.name,
               "labels": self.label_dict,
               "buckets": [list(pair) for pair in
                           zip(self.bounds, cumulative)],
               "sum": total_sum, "count": total_count}
        if exemplars:
            # Bounds as JSON-safe values: the overflow bucket's +Inf
            # becomes the string "+Inf" (strict JSON has no Infinity).
            row["exemplars"] = [
                [self.bounds[i] if i < len(self.bounds) else "+Inf",
                 trace_id, value]
                for i, (trace_id, value) in sorted(exemplars.items())]
        return row


class MetricsRegistry:
    """Get-or-create home for every metric of one run/process.

    The registry hands out metric objects keyed by (name, labels); the
    same request always returns the same object, so instrumentation
    sites can call ``registry.counter(...)`` once at setup and hold the
    reference on the hot path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelPairs], _Metric] = {}

    def _get_or_create(self, cls, name: str, labels: Dict[str, str],
                       help: str, **kwargs) -> _Metric:
        if not name or not name.replace("_", "a").isidentifier():
            raise ValueError(
                f"metric name must be a valid identifier, got {name!r}")
        key = (name, _label_pairs(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            # A name must keep one type across all label sets.
            for (other_name, _), other in self._metrics.items():
                if other_name == name and other.kind != cls.kind:
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{other.kind}, not {cls.kind}")
            metric = cls(name, key[1], help=help, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """Get or create the counter ``name{labels}``."""
        return self._get_or_create(Counter, name, labels, help)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  **labels) -> Histogram:
        """Get or create the histogram ``name{labels}``."""
        return self._get_or_create(Histogram, name, labels, help,
                                   buckets=buckets)

    def collect(self) -> List[_Metric]:
        """All registered metrics, sorted by (name, labels)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted(metrics, key=lambda m: (m.name, m.labels))

    def snapshot(self) -> List[dict]:
        """A consistent list of plain-dict rows for every metric.

        This is the single wire format shared by the JSONL exporter,
        the Prometheus exporter, the journal's ``metrics`` line and the
        ``repro metrics`` table -- so their counter values can never
        disagree.
        """
        return [metric.row() for metric in self.collect()]

    def counter_values(self) -> Dict[str, int]:
        """``name{label=value,...} -> value`` for every counter (tests)."""
        out: Dict[str, int] = {}
        for metric in self.collect():
            if metric.kind == "counter":
                label_text = ",".join(f"{k}={v}" for k, v in metric.labels)
                key = f"{metric.name}{{{label_text}}}" if label_text \
                    else metric.name
                out[key] = metric.value
        return out


class Reservoir:
    """Fixed-size uniform sample of a value stream (Vitter Algorithm R).

    Exact percentiles need the raw samples, but storing one float per
    request makes a million-request open-loop run grow memory linearly.
    A reservoir keeps a uniformly random, fixed-size subset: after *n*
    observations every value had probability ``size/n`` of surviving,
    so sample percentiles converge on stream percentiles while memory
    stays O(size).  Seeded, hence deterministic per instance.

    Not internally locked -- callers (``ServiceMetrics``,
    ``ClusterMetrics``) already serialise observations under their own
    lock, and the extra acquisition per request would be pure overhead.
    """

    def __init__(self, size: int = 4096, seed: int = 0) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size
        self.count = 0           # total observations offered
        self._rng = random.Random(seed)
        self._values: List[float] = []

    def __len__(self) -> int:
        return len(self._values)

    def add(self, value: float) -> None:
        """Offer one observation to the sample."""
        self.count += 1
        if len(self._values) < self.size:
            self._values.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.size:
            self._values[slot] = value

    def values(self) -> List[float]:
        """A copy of the current sample (unordered)."""
        return list(self._values)


def merge_snapshots(snapshots: Iterable[List[dict]]) -> List[dict]:
    """Merge snapshot rows, summing counters/histograms by identity.

    Gauges take the *last* value seen.  Used when aggregating metrics
    across resumed sweep sessions journalled separately.
    """
    merged: Dict[Tuple, dict] = {}
    for rows in snapshots:
        for row in rows:
            key = (row["name"], tuple(sorted(row["labels"].items())))
            existing = merged.get(key)
            if existing is None:
                merged[key] = {**row, "labels": dict(row["labels"])}
                continue
            if existing["type"] != row["type"]:
                raise TypeError(
                    f"metric {row['name']!r} changed type across "
                    f"snapshots: {existing['type']} vs {row['type']}")
            if row["type"] == "counter":
                existing["value"] += row["value"]
            elif row["type"] == "gauge":
                existing["value"] = row["value"]
            else:  # histogram: cumulative bucket counts sum bucket-wise
                if [b for b, _ in existing["buckets"]] != \
                        [b for b, _ in row["buckets"]]:
                    raise ValueError(
                        f"histogram {row['name']!r} bucket bounds differ "
                        f"across snapshots")
                existing["buckets"] = [
                    [bound, have + got] for (bound, have), (_, got)
                    in zip(existing["buckets"], row["buckets"])]
                existing["sum"] += row["sum"]
                existing["count"] += row["count"]
    return sorted(merged.values(),
                  key=lambda r: (r["name"], sorted(r["labels"].items())))


__all__ = [
    "DEFAULT_AGE_BUCKETS",
    "DEFAULT_DURATION_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Reservoir",
    "exponential_buckets",
    "merge_snapshots",
]
