"""Span-based run tracing with Chrome trace-event export.

A sweep is a tree of work: the sweep contains cells (one per
(trace, policy, size)), each cell contains attempts (retries under the
fault-tolerant executor).  Aggregate counters cannot show *where* the
wall time of a degraded run went -- a cell that retried three times
looks identical to three fast cells.  :class:`SpanTracer` records that
tree as lightweight spans (name, category, start/end, parent id,
labels, and optionally the registry counter deltas that accrued while
the span was open) and exports it as Chrome trace-event JSON, so one
``runs/<run-id>/trace.json`` opens directly in ``chrome://tracing`` or
`Perfetto <https://ui.perfetto.dev>`_ with sweep→cell→attempt nesting
intact.

Two recording styles:

* :meth:`SpanTracer.span` -- a context manager for code the tracer's
  thread executes (the sweep itself, fast-path cells, serial attempts).
  Parent linkage comes from a per-thread span stack.
* :meth:`SpanTracer.add_span` -- explicit start/end timestamps for
  work observed from outside (the parallel executor's coordinator
  records each worker attempt from launch to settle).  Span ids can be
  pre-allocated with :meth:`allocate_id` so children recorded *before*
  their parent settles still link correctly.

The export is validated by :func:`validate_chrome_trace`, a
dependency-free mini JSON-Schema checker driven by
:data:`CHROME_TRACE_SCHEMA` -- the same check the test-suite and the
CI artifact gate run, so a trace that passes the tests is a trace
Perfetto will load.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry

PathLike = Union[str, Path]


@dataclass
class Span:
    """One traced unit of work (times in seconds since tracer epoch)."""

    span_id: int
    name: str
    cat: str
    start: float
    end: float
    parent_id: Optional[int]
    tid: int
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """The span's length in seconds."""
        return self.end - self.start


class SpanTracer:
    """Thread-safe span recorder for one run.

    Parameters
    ----------
    registry:
        Optional :class:`MetricsRegistry`; spans opened via
        :meth:`span` then attach the counter deltas that accrued while
        they were open (``args["metric_deltas"]``) -- e.g. how many
        retries happened *inside this cell*.
    clock:
        Monotonic seconds source (injectable for deterministic tests);
        defaults to :func:`time.perf_counter`.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.registry = registry
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._tids: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the tracer's epoch."""
        return self._clock() - self._epoch

    def allocate_id(self) -> int:
        """Reserve a span id (for spans recorded at end via add_span)."""
        return next(self._ids)

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _thread_lane(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            lane = self._tids.get(ident)
            if lane is None:
                lane = self._tids[ident] = len(self._tids)
            return lane

    def current_span_id(self) -> Optional[int]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, cat: str = "repro", **args):
        """Context manager: record *name* around the enclosed block.

        Children opened on the same thread nest under it; with a
        registry, counter deltas accrued inside land in
        ``args["metric_deltas"]`` (zero-delta counters omitted).
        """
        return _SpanContext(self, name, cat, args)

    def add_span(self, name: str, start: float, end: float, *,
                 cat: str = "repro", span_id: Optional[int] = None,
                 parent_id: Optional[int] = None,
                 tid: Optional[int] = None, **args) -> int:
        """Record a span whose start/end were observed externally.

        *start*/*end* are :meth:`now` timestamps.  Without an explicit
        *parent_id* the span links under this thread's innermost open
        span (the coordinator records attempts while the sweep span is
        open).  Returns the span id.
        """
        if end < start:
            raise ValueError(f"span {name!r} ends ({end}) before it "
                             f"starts ({start})")
        if span_id is None:
            span_id = next(self._ids)
        if parent_id is None:
            parent_id = self.current_span_id()
        span = Span(span_id=span_id, name=name, cat=cat, start=start,
                    end=end, parent_id=parent_id,
                    tid=self._thread_lane() if tid is None else tid,
                    args=dict(args))
        with self._lock:
            self._spans.append(span)
        return span_id

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def spans(self, cat: Optional[str] = None) -> List[Span]:
        """Recorded spans in start order, optionally one category."""
        with self._lock:
            spans = list(self._spans)
        if cat is not None:
            spans = [s for s in spans if s.cat == cat]
        return sorted(spans, key=lambda s: (s.start, s.span_id))

    def children(self, parent_id: Optional[int]) -> List[Span]:
        """Direct children of *parent_id* (None: the root spans)."""
        return [s for s in self.spans() if s.parent_id == parent_id]

    # ------------------------------------------------------------------
    # Chrome trace-event export
    # ------------------------------------------------------------------
    def to_chrome(self) -> dict:
        """The run as a Chrome trace-event JSON object.

        Spans become ``"ph": "X"`` (complete) events with microsecond
        ``ts``/``dur``; span/parent ids ride in ``args`` so the tree
        survives tools that only show flat timelines.  One metadata
        event names the process.
        """
        events: List[dict] = [{
            "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
            "ts": 0, "args": {"name": "repro"},
        }]
        for span in self.spans():
            args = dict(span.args)
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            events.append({
                "name": span.name,
                "cat": span.cat or "repro",
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": 1,
                "tid": span.tid,
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: PathLike) -> Path:
        """Write :meth:`to_chrome` to *path* (validated first)."""
        trace = self.to_chrome()
        validate_chrome_trace(trace)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(trace, sort_keys=True))
        return path


class _SpanContext:
    """The object :meth:`SpanTracer.span` returns (re-entrant: no)."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start",
                 "_counters", "span_id")

    def __init__(self, tracer: SpanTracer, name: str, cat: str,
                 args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._start = 0.0
        self._counters: Optional[Dict[str, float]] = None
        self.span_id = tracer.allocate_id()

    def __enter__(self) -> "_SpanContext":
        tracer = self._tracer
        if tracer.registry is not None:
            self._counters = dict(tracer.registry.counter_values())
        self._start = tracer.now()
        tracer._stack().append(self.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        stack = tracer._stack()
        end = tracer.now()
        stack.pop()
        parent = stack[-1] if stack else None
        args = dict(self._args)
        if exc_type is not None:
            args["error"] = exc_type.__name__
        if self._counters is not None:
            after = tracer.registry.counter_values()
            deltas = {name: value - self._counters.get(name, 0)
                      for name, value in after.items()
                      if value != self._counters.get(name, 0)}
            if deltas:
                args["metric_deltas"] = deltas
        tracer.add_span(self._name, self._start, end, cat=self._cat,
                        span_id=self.span_id, parent_id=parent, **args)


# ----------------------------------------------------------------------
# Chrome trace-event JSON schema + dependency-free validator
# ----------------------------------------------------------------------

#: JSON Schema (draft-ish subset) for the trace-event export.  Kept
#: declarative so the tests and the CI artifact gate both validate the
#: real contract Perfetto expects: a top-level ``traceEvents`` array of
#: events whose ``ph`` is ``X`` (complete, with ``ts``/``dur``) or
#: ``M`` (metadata).
CHROME_TRACE_SCHEMA = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid", "ts"],
                "properties": {
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "ph": {"type": "string", "enum": ["X", "M", "B", "E"]},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def validate_json(instance, schema: dict, path: str = "$") -> None:
    """Validate *instance* against a JSON-Schema subset; raise ValueError.

    Supports the keywords :data:`CHROME_TRACE_SCHEMA` uses -- ``type``,
    ``required``, ``properties``, ``items``, ``enum``, ``minimum`` --
    which keeps the repo dependency-free while the schema stays a plain
    JSON document any external validator accepts too.
    """
    expected = schema.get("type")
    if expected is not None and not _TYPE_CHECKS[expected](instance):
        raise ValueError(f"{path}: expected {expected}, "
                         f"got {type(instance).__name__}")
    if "enum" in schema and instance not in schema["enum"]:
        raise ValueError(f"{path}: {instance!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) \
            and instance < schema["minimum"]:
        raise ValueError(f"{path}: {instance} < minimum "
                         f"{schema['minimum']}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                raise ValueError(f"{path}: missing required key {name!r}")
        for name, subschema in schema.get("properties", {}).items():
            if name in instance:
                validate_json(instance[name], subschema,
                              f"{path}.{name}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            validate_json(item, schema["items"], f"{path}[{i}]")


def validate_chrome_trace(trace: dict) -> None:
    """Check *trace* against :data:`CHROME_TRACE_SCHEMA` (+ X-needs-dur)."""
    validate_json(trace, CHROME_TRACE_SCHEMA)
    for i, event in enumerate(trace["traceEvents"]):
        if event["ph"] == "X" and "dur" not in event:
            raise ValueError(
                f"$.traceEvents[{i}]: complete ('X') event needs 'dur'")


__all__ = [
    "CHROME_TRACE_SCHEMA",
    "Span",
    "SpanTracer",
    "validate_chrome_trace",
    "validate_json",
]
