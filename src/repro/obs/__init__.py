"""repro.obs -- the unified telemetry subsystem.

One observability layer for all three runtime surfaces of this repo,
replacing the ad-hoc prints, per-subsystem dataclasses and one-off JSON
artifacts that accumulated as the repo grew:

* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` with thread-safe
  counters, gauges, and fixed-bucket histograms (the zero-dependency
  core; modelled on libCacheSim/Cachelib stats pipelines).
* :mod:`repro.obs.tracer` -- :class:`CacheTracer`, a
  :class:`~repro.core.base.CacheListener` recording admit / evict /
  promote / ghost-hit event streams in bounded ring buffers and feeding
  eviction-age histograms (the paper's Fig. 2e/3 lens).
* :mod:`repro.obs.export` -- JSON-lines snapshots, the Prometheus text
  format, and the human table behind ``repro metrics``.
* :mod:`repro.obs.timeseries` -- :class:`TimeSeriesRecorder`, windowed
  curves (miss ratio, eviction age, promotion rate, ...) sampled on a
  virtual-time cadence with bounded memory; behind ``repro
  timeseries``.
* :mod:`repro.obs.span` -- :class:`SpanTracer`, sweep→cell→attempt run
  tracing exported as Chrome trace-event JSON for
  ``chrome://tracing``/Perfetto.
* :mod:`repro.obs.reqtrace` -- :class:`RequestTracer`, per-request
  distributed tracing: seeded head sampling plus tail-based keep rules
  (errors, drops, breaker-opens, slow requests), a propagated
  :class:`TraceContext` joining service / cluster / hierarchy /
  open-loop spans into one tree, and histogram exemplars linking
  ``repro metrics`` buckets to ``repro trace show``.
* :mod:`repro.obs.diff` -- :func:`diff_runs`, cross-run regression
  diffing of journal snapshots and time series; behind ``repro diff``.

Instrumentation is **opt-in** everywhere: pass a
:class:`MetricsRegistry` to :class:`~repro.service.CacheService`, to
:func:`~repro.sim.runner.run_sweep` (via
:class:`~repro.sim.SimOptions`), or attach a :class:`CacheTracer`
listener to a policy.  Uninstrumented runs pay nothing -- enforced
within 5 % on the fast-path benchmark by
``benchmarks/check_obs_overhead.py``.
"""

from repro.obs.diff import (
    DEFAULT_IGNORES,
    DiffReport,
    DiffRow,
    DiffThresholds,
    diff_runs,
    diff_states,
    load_run,
)
from repro.obs.export import (
    parse_prometheus_values,
    read_jsonl,
    render_metrics_table,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_AGE_BUCKETS,
    DEFAULT_DURATION_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    merge_snapshots,
)
from repro.obs.reqtrace import (
    NOT_SAMPLED,
    ActiveSpan,
    RequestTracer,
    TailRules,
    TraceContext,
    chrome_from_rows,
    read_trace_jsonl,
    render_trace_list,
    render_trace_tree,
)
from repro.obs.span import (
    CHROME_TRACE_SCHEMA,
    Span,
    SpanTracer,
    validate_chrome_trace,
    validate_json,
)
from repro.obs.timeseries import (
    TimeSeriesRecorder,
    read_timeseries_jsonl,
    render_csv,
    render_sparklines,
    series_from_rows,
    series_key,
    sparkline,
)
from repro.obs.tracer import (
    ADMIT,
    EVICT,
    EVENT_KINDS,
    GHOST_HIT,
    PROMOTE,
    CacheEvent,
    CacheTracer,
)

__all__ = [
    "ADMIT",
    "CHROME_TRACE_SCHEMA",
    "DEFAULT_AGE_BUCKETS",
    "DEFAULT_DURATION_BUCKETS",
    "DEFAULT_IGNORES",
    "DEFAULT_LATENCY_BUCKETS",
    "EVICT",
    "EVENT_KINDS",
    "GHOST_HIT",
    "NOT_SAMPLED",
    "PROMOTE",
    "ActiveSpan",
    "CacheEvent",
    "CacheTracer",
    "Counter",
    "DiffReport",
    "DiffRow",
    "DiffThresholds",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RequestTracer",
    "Span",
    "SpanTracer",
    "TailRules",
    "TimeSeriesRecorder",
    "TraceContext",
    "chrome_from_rows",
    "diff_runs",
    "diff_states",
    "exponential_buckets",
    "load_run",
    "merge_snapshots",
    "parse_prometheus_values",
    "read_jsonl",
    "read_timeseries_jsonl",
    "read_trace_jsonl",
    "render_csv",
    "render_metrics_table",
    "render_sparklines",
    "render_trace_list",
    "render_trace_tree",
    "series_from_rows",
    "series_key",
    "sparkline",
    "to_jsonl",
    "to_prometheus",
    "validate_chrome_trace",
    "validate_json",
    "write_jsonl",
]
