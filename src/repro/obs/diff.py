"""Cross-run regression diffing of checkpoint journals.

Two runs of the same sweep should agree: the simulators are
deterministic, so a miss-ratio drift between a baseline journal and a
fresh one means a behaviour change -- exactly what a perf PR must not
smuggle in.  :func:`diff_states` aligns everything two journals
recorded and reports what moved:

* **results** -- ``result`` lines joined by (trace, policy, size);
  compared on miss ratio (absolute threshold -- ratios near zero make
  relative deltas meaningless), request counts (which must match
  exactly for the comparison to mean anything), and every other
  numeric payload field (relative threshold, one level of nested
  dicts flattened as ``field.subfield``) -- so journals whose result
  rows carry goodput/drop-ratio/promotion numbers instead of the
  classic requests/misses pair are gated too.
* **metrics** -- the final ``metrics`` snapshot rows joined by
  (name, labels); counters and gauges compared on relative delta,
  histograms on their count and sum.  Wall-time metrics
  (``*_seconds``) are ignored by default: they measure the machine,
  not the algorithm.
* **timeseries** -- ``timeseries`` rows joined by (series, t) and
  compared pointwise, so a transient regression (a miss-ratio spike
  after a working-set shift) fails the gate even when the end-of-run
  totals agree.

:func:`load_run` accepts a run id (under the runs root), a run
directory, or a ``journal.jsonl`` path, so CI can diff a fresh run
against a baseline journal committed to the repo.  The ``repro diff``
CLI wraps this and exits non-zero on regression -- the repo's
first-class regression detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

PathLike = Union[str, Path]

#: Metric-name patterns excluded from the metrics/timeseries sections
#: by default: wall-clock durations vary run to run by machine load,
#: not by cache behaviour.
DEFAULT_IGNORES = ("*_seconds", "*_seconds:*")

_EPS = 1e-12


@dataclass(frozen=True)
class DiffThresholds:
    """What counts as a regression.

    * ``metric_rel`` -- relative tolerance for snapshot counter/gauge/
      histogram values.
    * ``miss_ratio_abs`` -- absolute tolerance for per-cell miss
      ratios.
    * ``timeseries_rel`` -- relative tolerance for aligned time-series
      points.
    * ``ignore`` -- fnmatch patterns of metric/series names to skip.
    """

    metric_rel: float = 0.05
    miss_ratio_abs: float = 0.01
    timeseries_rel: float = 0.05
    ignore: Tuple[str, ...] = DEFAULT_IGNORES

    def __post_init__(self) -> None:
        for name in ("metric_rel", "miss_ratio_abs", "timeseries_rel"):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"{name} must be >= 0, got {getattr(self, name)}")

    def ignored(self, name: str) -> bool:
        """Whether metric/series *name* is excluded from the diff."""
        return any(fnmatch(name, pattern) for pattern in self.ignore)


@dataclass(frozen=True)
class DiffRow:
    """One aligned quantity that differs between the two runs."""

    section: str        # "results" | "metrics" | "timeseries"
    key: str            # e.g. "(trace=zipf-0, policy=LRU, size=0.1)"
    metric: str         # e.g. "miss_ratio", "sweep_cells_total"
    a: float
    b: float
    regressed: bool

    @property
    def delta(self) -> float:
        """Signed difference (b - a)."""
        return self.b - self.a

    @property
    def rel_delta(self) -> float:
        """Symmetric relative difference of the two values."""
        return abs(self.b - self.a) / max(abs(self.a), abs(self.b), _EPS)


@dataclass
class DiffReport:
    """Everything :func:`diff_states` found."""

    rows: List[DiffRow] = field(default_factory=list)  # differing only
    compared: int = 0
    only_a: List[str] = field(default_factory=list)
    only_b: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[DiffRow]:
        """Rows whose delta exceeded its threshold."""
        return [row for row in self.rows if row.regressed]

    @property
    def ok(self) -> bool:
        """True when nothing regressed (drift within tolerance is ok)."""
        return not self.regressions and not self.only_a and not self.only_b

    def render(self, show_all: bool = False) -> str:
        """Human-readable summary; regressions first."""
        lines = [f"compared {self.compared} aligned quantities: "
                 f"{len(self.rows)} differ, "
                 f"{len(self.regressions)} beyond tolerance"]
        shown = self.rows if show_all else self.regressions
        for row in sorted(shown, key=lambda r: (not r.regressed,
                                                r.section, r.key)):
            marker = "REGRESSED" if row.regressed else "drift"
            lines.append(
                f"  [{marker}] {row.section} {row.key} {row.metric}: "
                f"{row.a:.6g} -> {row.b:.6g} "
                f"(delta {row.delta:+.6g}, {row.rel_delta:.2%})")
        for key in self.only_a:
            lines.append(f"  [MISSING in B] {key}")
        for key in self.only_b:
            lines.append(f"  [MISSING in A] {key}")
        if self.ok:
            lines.append("  runs agree within tolerance")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------

def load_run(spec: PathLike, runs_dir: Optional[PathLike] = None):
    """Resolve *spec* to a loaded :class:`~repro.exec.journal.JournalState`.

    *spec* may be a ``journal.jsonl`` file, a run directory containing
    one, or a run id under the runs root (``runs_dir`` /
    ``$REPRO_RUNS_DIR`` / ``runs/``).
    """
    from repro.exec.journal import JOURNAL_NAME, Journal

    path = Path(spec)
    if path.is_file():
        return Journal(path.parent).load()
    if (path / JOURNAL_NAME).is_file():
        return Journal(path).load()
    return Journal.open(str(spec), root=runs_dir).load()


# ----------------------------------------------------------------------
# Section diffs
# ----------------------------------------------------------------------

def _record_key(key: Sequence) -> str:
    trace, policy, size = (list(key) + ["?", "?", "?"])[:3]
    return f"(trace={trace}, policy={policy}, size={size})"


#: Payload fields already covered by the requests + miss-ratio
#: comparison (``hits`` is derivable from the other two); excluded
#: from the generic numeric sweep so one perturbation does not show
#: up three times.
_CLASSIC_FIELDS = frozenset({"requests", "hits", "misses"})


def _payload_numbers(payload: Dict,
                     thresholds: DiffThresholds) -> Dict[str, float]:
    """Numeric payload fields beyond the classic requests/misses pair.

    One level of nested dicts (e.g. an ``outcomes`` histogram) is
    flattened to ``field.subfield``; bools, strings and ``ignore``d
    names (wall-time ``*_seconds`` by default) are skipped.
    """
    out: Dict[str, float] = {}
    for name, value in payload.items():
        if name in _CLASSIC_FIELDS or thresholds.ignored(name):
            continue
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[name] = float(value)
        elif isinstance(value, dict):
            for sub, nested in value.items():
                if isinstance(nested, bool):
                    continue
                if not isinstance(nested, (int, float)):
                    continue
                if not thresholds.ignored(f"{name}.{sub}"):
                    out[f"{name}.{sub}"] = float(nested)
    return out


def _diff_results(a: Dict, b: Dict, thresholds: DiffThresholds,
                  report: DiffReport) -> None:
    for key in sorted(set(a) | set(b), key=str):
        label = _record_key(key)
        if key not in b:
            report.only_a.append(f"results {label}")
            continue
        if key not in a:
            report.only_b.append(f"results {label}")
            continue
        pa, pb = a[key], b[key]
        ra = pa.get("requests", 0) or 0
        rb = pb.get("requests", 0) or 0
        mr_a = (pa.get("misses", 0) / ra) if ra else 0.0
        mr_b = (pb.get("misses", 0) / rb) if rb else 0.0
        report.compared += 2
        if ra != rb:
            report.rows.append(DiffRow(
                "results", label, "requests", float(ra), float(rb),
                regressed=True))
        if mr_a != mr_b:
            report.rows.append(DiffRow(
                "results", label, "miss_ratio", mr_a, mr_b,
                regressed=abs(mr_b - mr_a) > thresholds.miss_ratio_abs))
        numbers_a = _payload_numbers(pa, thresholds)
        numbers_b = _payload_numbers(pb, thresholds)
        for metric in sorted(set(numbers_a) | set(numbers_b)):
            if metric not in numbers_b:
                report.only_a.append(f"results {label} {metric}")
                continue
            if metric not in numbers_a:
                report.only_b.append(f"results {label} {metric}")
                continue
            va, vb = numbers_a[metric], numbers_b[metric]
            report.compared += 1
            if va != vb:
                rel = abs(vb - va) / max(abs(va), abs(vb), _EPS)
                report.rows.append(DiffRow(
                    "results", label, metric, va, vb,
                    regressed=rel > thresholds.metric_rel))


def _metric_values(rows: Optional[List[dict]],
                   thresholds: DiffThresholds) -> Dict[str, float]:
    """Snapshot rows flattened to ``name{labels}[:part] -> value``."""
    from repro.obs.timeseries import series_key

    out: Dict[str, float] = {}
    for row in rows or []:
        name = row.get("name", "")
        base = series_key(name, row.get("labels") or {})
        if row.get("type") == "histogram":
            for part in ("count", "sum"):
                if not thresholds.ignored(f"{name}:{part}"):
                    out[f"{base}:{part}"] = float(row[part])
        elif not thresholds.ignored(name):
            out[base] = float(row["value"])
    return out


def _diff_metrics(a: Optional[List[dict]], b: Optional[List[dict]],
                  thresholds: DiffThresholds, report: DiffReport) -> None:
    values_a = _metric_values(a, thresholds)
    values_b = _metric_values(b, thresholds)
    for key in sorted(set(values_a) | set(values_b)):
        if key not in values_b:
            report.only_a.append(f"metrics {key}")
            continue
        if key not in values_a:
            report.only_b.append(f"metrics {key}")
            continue
        va, vb = values_a[key], values_b[key]
        report.compared += 1
        if va != vb:
            rel = abs(vb - va) / max(abs(va), abs(vb), _EPS)
            report.rows.append(DiffRow(
                "metrics", key, "value", va, vb,
                regressed=rel > thresholds.metric_rel))


def _diff_timeseries(a: Optional[List[dict]], b: Optional[List[dict]],
                     thresholds: DiffThresholds,
                     report: DiffReport) -> None:
    # Either side without a recorded time series: nothing to compare
    # (recorders are opt-in; absence is not a regression).
    if not a or not b:
        return
    from repro.obs.timeseries import series_from_rows

    map_a = series_from_rows(a)
    map_b = series_from_rows(b)
    for series in sorted(set(map_a) | set(map_b)):
        if thresholds.ignored(series.split("{", 1)[0]):
            continue
        if series not in map_b:
            report.only_a.append(f"timeseries {series}")
            continue
        if series not in map_a:
            report.only_b.append(f"timeseries {series}")
            continue
        points_a = {t: v for t, _, v in map_a[series]}
        points_b = {t: v for t, _, v in map_b[series]}
        worst: Optional[DiffRow] = None
        for t in sorted(set(points_a) & set(points_b)):
            va, vb = points_a[t], points_b[t]
            report.compared += 1
            if va == vb:
                continue
            rel = abs(vb - va) / max(abs(va), abs(vb), _EPS)
            row = DiffRow("timeseries", f"{series} @t={t:g}", "value",
                          va, vb, regressed=rel > thresholds.timeseries_rel)
            if worst is None or row.rel_delta > worst.rel_delta:
                worst = row
        if worst is not None:
            report.rows.append(worst)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def diff_states(state_a, state_b,
                thresholds: Optional[DiffThresholds] = None) -> DiffReport:
    """Diff two loaded journal states; see the module docstring."""
    thresholds = thresholds or DiffThresholds()
    report = DiffReport()
    _diff_results(state_a.results, state_b.results, thresholds, report)
    _diff_metrics(state_a.metrics, state_b.metrics, thresholds, report)
    _diff_timeseries(state_a.timeseries, state_b.timeseries,
                     thresholds, report)
    return report


def diff_runs(run_a: PathLike, run_b: PathLike,
              thresholds: Optional[DiffThresholds] = None,
              runs_dir: Optional[PathLike] = None) -> DiffReport:
    """Load two runs (ids or paths) and diff them."""
    return diff_states(load_run(run_a, runs_dir), load_run(run_b, runs_dir),
                       thresholds)


__all__ = [
    "DEFAULT_IGNORES",
    "DiffReport",
    "DiffRow",
    "DiffThresholds",
    "diff_runs",
    "diff_states",
    "load_run",
]
