"""Metric exporters: JSON-lines, Prometheus text format, ASCII table.

Every exporter consumes the same snapshot rows
(:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`), so the values a
Prometheus scrape reports and the values a JSONL artifact records can
never diverge -- the snapshot tests assert it.  The row format::

    {"type": "counter",   "name": ..., "labels": {...}, "value": N}
    {"type": "gauge",     "name": ..., "labels": {...}, "value": X}
    {"type": "histogram", "name": ..., "labels": {...},
     "buckets": [[le, cumulative], ...], "sum": S, "count": N}

JSON-lines is the storage format (one metric per line -- append-safe,
mirrors the checkpoint journal); the Prometheus text format is the
scrape/export format; :func:`render_metrics_table` is what the
``repro metrics`` CLI shows humans.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry

PathLike = Union[str, Path]

Rows = List[dict]


def _as_rows(source: Union[MetricsRegistry, Sequence[dict]]) -> Rows:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return list(source)


# ----------------------------------------------------------------------
# JSON-lines
# ----------------------------------------------------------------------

def to_jsonl(source: Union[MetricsRegistry, Sequence[dict]]) -> str:
    """Snapshot rows as JSON-lines text (one metric per line)."""
    return "\n".join(json.dumps(row, sort_keys=True)
                     for row in _as_rows(source)) + "\n"


def write_jsonl(source: Union[MetricsRegistry, Sequence[dict]],
                path: PathLike) -> Path:
    """Write the JSONL snapshot to *path*; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_jsonl(source))
    return path


def read_jsonl(path: PathLike) -> Rows:
    """Load snapshot rows back from a JSONL file.

    Blank and torn (unparseable) lines are skipped, mirroring the
    checkpoint journal's crash-tolerant reader.
    """
    rows: Rows = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(row, dict) and {"type", "name"} <= row.keys():
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------

def _prom_labels(labels: Dict[str, str], extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_prom_escape(str(value))}"'
        for key, value in sorted(merged.items()))
    return "{" + inner + "}"


def _prom_escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _prom_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(source: Union[MetricsRegistry, Sequence[dict]]) -> str:
    """Snapshot rows in the Prometheus exposition (text) format."""
    lines: List[str] = []
    seen_types: Dict[str, str] = {}
    for row in _as_rows(source):
        name, kind, labels = row["name"], row["type"], row["labels"]
        if seen_types.get(name) != kind:
            lines.append(f"# TYPE {name} {kind}")
            seen_types[name] = kind
        if kind in ("counter", "gauge"):
            lines.append(
                f"{name}{_prom_labels(labels)} {_prom_number(row['value'])}")
        elif kind == "histogram":
            for bound, cumulative in row["buckets"]:
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels(labels, {'le': _prom_number(bound)})}"
                    f" {cumulative}")
            lines.append(
                f"{name}_bucket{_prom_labels(labels, {'le': '+Inf'})}"
                f" {row['count']}")
            lines.append(
                f"{name}_sum{_prom_labels(labels)} "
                f"{_prom_number(row['sum'])}")
            lines.append(
                f"{name}_count{_prom_labels(labels)} {row['count']}")
        else:
            raise ValueError(f"unknown metric type {kind!r} for {name!r}")
    return "\n".join(lines) + "\n"


def parse_prometheus_values(text: str) -> Dict[str, float]:
    """``name{labels} -> value`` from Prometheus text (tests only)."""
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, value = line.rsplit(" ", 1)
        out[series] = float("inf") if value == "+Inf" else float(value)
    return out


# ----------------------------------------------------------------------
# Human-readable table
# ----------------------------------------------------------------------

def render_metrics_table(source: Union[MetricsRegistry, Sequence[dict]],
                         title: str = "metrics") -> str:
    """One aligned ASCII table over all metric rows.

    Histograms render as count/sum plus coarse p50/p99 estimates from
    the cumulative buckets.
    """
    # Imported here: repro.analysis pulls in the sim layer, which this
    # low-level module must not import at module scope (cycle).
    from repro.analysis.tables import render_table

    body: List[List] = []
    for row in _as_rows(source):
        labels = ",".join(f"{k}={v}"
                          for k, v in sorted(row["labels"].items()))
        if row["type"] in ("counter", "gauge"):
            body.append([row["name"], labels, row["type"],
                         row["value"], None, None])
        else:
            count = row["count"]
            body.append([row["name"], labels, row["type"], count,
                         row["sum"],
                         _bucket_quantile(row, 0.99) if count else None])
    table = render_table(
        ["metric", "labels", "type", "value/count", "sum", "~p99"],
        body, title=title, precision=4)
    exemplar_lines = _render_exemplars(_as_rows(source))
    if exemplar_lines:
        table += "\n\nexemplars (resolve with `repro trace show`):\n" \
            + "\n".join(exemplar_lines)
    return table


def _render_exemplars(rows: Rows) -> List[str]:
    """One "p99 bucket -> trace" line per histogram row with exemplars."""
    lines: List[str] = []
    for row in rows:
        if row.get("type") != "histogram" or not row.get("exemplars"):
            continue
        labels = ",".join(f"{k}={v}"
                          for k, v in sorted(row["labels"].items()))
        series = f"{row['name']}{{{labels}}}" if labels else row["name"]
        p99 = _bucket_quantile(row, 0.99)
        # The exemplar whose bucket covers the p99 estimate, falling
        # back to the highest bucket that has one.
        best = None
        for bound, trace_id, value in row["exemplars"]:
            best = (bound, trace_id, value)
            if bound == "+Inf" or float(bound) >= p99:
                break
        if best is None:  # pragma: no cover - guarded by the check above
            continue
        bound, trace_id, value = best
        le = bound if bound == "+Inf" else f"{float(bound):.6g}"
        lines.append(f"  {series} p99 bucket le={le} -> "
                     f"trace {trace_id} ({value:.6g})")
    return lines


def _bucket_quantile(row: dict, q: float) -> float:
    """Coarse quantile from a snapshot histogram row."""
    total = row["count"]
    if total == 0:
        return 0.0
    rank = q * total
    largest = 0.0
    for bound, cumulative in row["buckets"]:
        largest = bound
        if cumulative >= rank:
            return bound
    return largest  # the overflow bucket: clamp to the largest bound


__all__ = [
    "parse_prometheus_values",
    "read_jsonl",
    "render_metrics_table",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
]
