"""Per-request distributed tracing with tail sampling.

The span tracer in :mod:`repro.obs.span` answers *where the sweep spent
its time* (sweep -> cell -> attempt); this module answers *what happened
to one request*.  A :class:`RequestTracer` hands out :class:`ActiveSpan`
handles at the edge of the request path (the open-loop engine, a bare
``CacheService.get``, ``CacheCluster.get`` or ``CacheHierarchy.request``)
and a :class:`TraceContext` -- trace id plus parent span id -- is
propagated through every layer underneath so child spans nest under the
caller's span no matter which component created the root.

Sampling is two-staged, the way production tracers do it:

* **Head sampling** -- a seeded coin flip at root-start decides whether
  the request is traced at all (``sample=0.01`` keeps tracing cheap at
  volume).  Requests that lose the flip cost one RNG call and nothing
  else; un-sampled contexts propagate as ``None`` so every layer's
  disabled path is a single ``is None`` check.
* **Tail keep rules** -- at root-end, :class:`TailRules` decide whether
  the finished trace is worth retaining: error/shed/dropped outcomes are
  always kept, spans marked mid-flight (breaker-open paths, histogram
  exemplars) are always kept, and latencies above a percentile of the
  traffic seen so far are kept.  Everything else is discarded, so the
  bounded buffer fills with the *interesting* requests.

All randomness comes from one ``random.Random(seed)`` and all
timestamps from the shared clock, so a run on a ``VirtualClock`` is
bit-reproducible and CI can diff the kept traces at zero tolerance.

Exports reuse the PR 5 wire formats: ``write_chrome_trace`` emits the
same ``chrome://tracing`` event shape as :class:`repro.obs.span.SpanTracer`
(validated against ``CHROME_TRACE_SCHEMA`` before writing) and
``write_jsonl`` emits one self-contained JSON object per kept trace for
the ``repro trace`` CLI.
"""
from __future__ import annotations

import itertools
import json
import math
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.span import validate_chrome_trace

PathLike = Union[str, Path]

#: Keep-reason vocabulary, in decision order.
KEEP_OUTCOME = "outcome"    # root outcome matched TailRules.keep_outcomes
KEEP_MARKED = "marked"      # a layer called span.mark() (breaker-open, ...)
KEEP_EXEMPLAR = "exemplar"  # trace id was taken as a histogram exemplar
KEEP_SLOW = "slow"          # latency above the tail percentile
KEEP_SAMPLED = "sampled"    # residual random keep (TailRules.keep_fraction)


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Ceil-based nearest-rank percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1,
               max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


@dataclass(frozen=True)
class TraceContext:
    """What crosses a layer boundary: which trace, and under which span."""

    trace_id: str
    span_id: int


#: Propagated instead of ``None`` when the head sampler already said no:
#: a downstream layer receiving this knows the sampling decision is made
#: and stays dark, instead of running its own head sample and starting a
#: fresh root (which would double the effective sample rate and mix
#: mid-stack roots into the kept buffer).
NOT_SAMPLED = TraceContext(trace_id="", span_id=0)


@dataclass(frozen=True)
class TailRules:
    """Which finished traces are worth keeping.

    * ``keep_outcomes`` -- root outcomes retained unconditionally.
    * ``latency_quantile`` -- keep roots slower than this quantile of
      the root latencies seen so far (seeded reservoir estimate).  The
      rule only engages after ``min_latency_samples`` roots so the
      first few requests don't all count as "slow".
    * ``keep_fraction`` -- residual probability of keeping an otherwise
      boring trace, so exports show healthy requests too.
    """

    keep_outcomes: Tuple[str, ...] = ("error", "dropped", "shed")
    latency_quantile: float = 0.95
    min_latency_samples: int = 32
    keep_fraction: float = 0.0


@dataclass
class _Trace:
    """A trace being assembled (and, if kept, its final record)."""

    trace_id: str
    name: str
    root_id: int
    start: float
    spans: List[dict] = field(default_factory=list)
    marks: List[str] = field(default_factory=list)
    outcome: Optional[str] = None
    latency: float = 0.0
    keep: Optional[str] = None


class ActiveSpan:
    """Handle on one open span of a sampled trace.

    Usable as a context manager, but the request path mostly drives it
    by hand (``CacheService.get`` has half a dozen exits) -- create with
    :meth:`RequestTracer.start` or :meth:`child`, annotate with
    :meth:`note`, close with :meth:`end`.
    """

    __slots__ = ("_tracer", "_trace", "span_id", "name",
                 "start", "parent_id", "_args", "_done")

    def __init__(self, tracer: "RequestTracer", trace: _Trace,
                 span_id: int, name: str, start: float,
                 parent_id: Optional[int], args: Dict[str, Any]):
        self._tracer = tracer
        self._trace = trace
        self.span_id = span_id
        self.name = name
        self.start = start
        self.parent_id = parent_id
        self._args = args
        self._done = False

    # -- identity -----------------------------------------------------

    @property
    def trace_id(self) -> str:
        return self._trace.trace_id

    @property
    def ctx(self) -> TraceContext:
        """Context to hand to the next layer down."""
        return TraceContext(self._trace.trace_id, self.span_id)

    @property
    def is_root(self) -> bool:
        return self.span_id == self._trace.root_id

    # -- annotation ---------------------------------------------------

    def note(self, **kv: Any) -> None:
        """Attach key/value annotations to this span."""
        self._args.update(kv)

    def mark(self, reason: str) -> None:
        """Force the whole trace to be kept at tail time."""
        self._trace.marks.append(reason)

    # -- children -----------------------------------------------------

    def child(self, name: str, start: Optional[float] = None,
              **args: Any) -> "ActiveSpan":
        """Open a child span (now, unless ``start`` is given)."""
        return self._tracer._open(self._trace, name, start, self.span_id,
                                  args)

    def add_span(self, name: str, start: float, end: float,
                 **args: Any) -> int:
        """Record a finished child span with explicit timestamps.

        The open-loop engine uses this retroactively: queue-wait is only
        known at dispatch time, promotion lock time only at completion.
        """
        if end < start:
            raise ValueError(
                f"span {name!r} ends before it starts ({end} < {start})")
        span_id = next(self._tracer._ids)
        self._trace.spans.append({
            "span_id": span_id, "parent_id": self.span_id, "name": name,
            "start": start, "end": end, "args": dict(args)})
        return span_id

    # -- closing ------------------------------------------------------

    def end(self, outcome: Optional[str] = None, at: Optional[float] = None,
            **args: Any) -> Optional[str]:
        """Close the span.

        For a root span this also runs the tail keep rules; the return
        value is the keep reason (``None`` when the trace was
        discarded).  Child spans always return ``None``.
        """
        if self._done:           # idempotent: multi-exit code paths may
            return None          # hit a shared cleanup twice
        self._done = True
        if args:
            self._args.update(args)
        if outcome is not None:
            self._args["outcome"] = outcome
        return self._tracer._close(self, outcome, at)

    def __enter__(self) -> "ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and "error" not in self._args:
            self._args["error"] = repr(exc)
        self.end(outcome="error" if exc is not None else None)


class RequestTracer:
    """Seeded head sampling + tail keep over a bounded trace buffer.

    Parameters
    ----------
    sample:
        Head-sampling probability in ``[0, 1]``.
    seed:
        Seeds the single RNG used for the head coin flip, trace ids,
        the latency reservoir and the residual tail keep.
    clock:
        Anything with a ``now() -> float``; defaults to
        ``time.perf_counter``.  Timestamps are recorded on this clock
        and normalised to the tracer's epoch on export.
    max_traces:
        Bound on the kept-trace buffer (oldest kept trace evicted).
    tail:
        :class:`TailRules`; the default keeps errors/drops/sheds,
        marked traces and the slowest ~5%.
    registry:
        Optional :class:`repro.obs.MetricsRegistry`; when given the
        tracer exports ``reqtrace_requests_total``,
        ``reqtrace_sampled_total``, ``reqtrace_kept_total{reason=}``
        and ``reqtrace_discarded_total`` counters.
    """

    def __init__(self, sample: float = 1.0, seed: int = 0,
                 clock: Any = None, max_traces: int = 512,
                 tail: Optional[TailRules] = None,
                 registry: Any = None,
                 labels: Optional[Dict[str, str]] = None):
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        if max_traces < 1:
            raise ValueError("max_traces must be positive")
        if clock is not None:
            self._now = clock.now
        else:                                   # wall clock fallback
            from time import perf_counter
            self._now = perf_counter
        self.sample = sample
        self.tail = tail if tail is not None else TailRules()
        self._rng = Random(seed)
        self._ids = itertools.count(1)
        self._epoch = self._now()
        self._lock = threading.Lock()
        self._active: Dict[str, _Trace] = {}
        self.kept: deque = deque(maxlen=max_traces)
        # Traces referenced from histogram exemplars live outside the
        # ring: a `repro metrics` exemplar must stay resolvable via
        # `repro trace show` even after max_traces later keeps.  Bounded
        # by max_traces as well (and in practice by first-exemplar-per-
        # bucket, which caps it at buckets x histograms).
        self._pinned: Dict[str, _Trace] = {}
        # Seeded reservoir of root latencies backing the "slow" rule.
        from repro.obs.metrics import Reservoir
        self._latencies = Reservoir(size=256, seed=seed + 1)
        self._latency_count = 0
        self._requests = 0
        self._sampled = 0
        self._discarded = 0
        self._labels = dict(labels or {})
        self._registry = registry
        if registry is not None:
            self._c_requests = registry.counter(
                "reqtrace_requests_total",
                "Requests seen by the request tracer", **self._labels)
            self._c_sampled = registry.counter(
                "reqtrace_sampled_total",
                "Requests head-sampled into a trace", **self._labels)
            self._c_discarded = registry.counter(
                "reqtrace_discarded_total",
                "Sampled traces discarded by the tail rules", **self._labels)

    # -- time ---------------------------------------------------------

    def now(self) -> float:
        return self._now()

    # -- span lifecycle ----------------------------------------------

    def start(self, name: str, ctx: Optional[TraceContext] = None,
              start: Optional[float] = None,
              **args: Any) -> Optional[ActiveSpan]:
        """Open a span; returns ``None`` when the request isn't traced.

        Without ``ctx`` this is a *root* start and runs the head
        sampler.  With ``ctx`` it joins the caller's trace -- or stays
        dark if that trace was never sampled (or already finished).
        """
        with self._lock:
            if ctx is not None:
                trace = self._active.get(ctx.trace_id)
                if trace is None:
                    return None
                return self._open(trace, name, start, ctx.span_id, args)
            self._requests += 1
            if self._registry is not None:
                self._c_requests.inc()
            if self._rng.random() >= self.sample:
                return None
            self._sampled += 1
            if self._registry is not None:
                self._c_sampled.inc()
            trace_id = f"{self._rng.getrandbits(48):012x}"
            at = self._now() if start is None else start
            root_id = next(self._ids)
            trace = _Trace(trace_id=trace_id, name=name,
                           root_id=root_id, start=at)
            self._active[trace_id] = trace
            return ActiveSpan(self, trace, root_id, name, at, None,
                              dict(args))

    def _open(self, trace: _Trace, name: str, start: Optional[float],
              parent_id: int, args: Dict[str, Any]) -> ActiveSpan:
        at = self._now() if start is None else start
        return ActiveSpan(self, trace, next(self._ids), name, at,
                          parent_id, dict(args))

    def _close(self, span: ActiveSpan, outcome: Optional[str],
               at: Optional[float]) -> Optional[str]:
        end = self._now() if at is None else at
        record = {"span_id": span.span_id, "parent_id": span.parent_id,
                  "name": span.name, "start": span.start,
                  "end": max(end, span.start), "args": span._args}
        with self._lock:
            trace = span._trace
            trace.spans.append(record)
            if span.span_id != trace.root_id:
                return None
            # Root closed: run the tail rules and retire the trace.
            self._active.pop(trace.trace_id, None)
            trace.outcome = outcome
            trace.latency = record["end"] - trace.start
            trace.keep = self._tail_keep(trace)
            self._latencies.add(trace.latency)
            self._latency_count += 1
            if trace.keep is None:
                self._discarded += 1
                if self._registry is not None:
                    self._c_discarded.inc()
                return None
            if self._registry is not None:
                self._registry.counter(
                    "reqtrace_kept_total", "Traces kept by the tail rules",
                    reason=trace.keep, **self._labels).inc()
            if KEEP_EXEMPLAR in trace.marks \
                    and len(self._pinned) < (self.kept.maxlen or 0):
                self._pinned[trace.trace_id] = trace
            else:
                self.kept.append(trace)
            return trace.keep

    def _tail_keep(self, trace: _Trace) -> Optional[str]:
        rules = self.tail
        if trace.outcome in rules.keep_outcomes:
            return KEEP_OUTCOME
        if trace.marks:
            return KEEP_EXEMPLAR if KEEP_EXEMPLAR in trace.marks \
                else KEEP_MARKED
        if (self._latency_count >= rules.min_latency_samples
                and trace.latency >= _percentile(self._latencies.values(),
                                                 rules.latency_quantile)):
            return KEEP_SLOW
        if rules.keep_fraction > 0.0 \
                and self._rng.random() < rules.keep_fraction:
            return KEEP_SAMPLED
        return None

    # -- introspection ------------------------------------------------

    def summary(self) -> dict:
        with self._lock:
            retained = list(self._pinned.values()) + list(self.kept)
            reasons: Dict[str, int] = {}
            for trace in retained:
                reasons[trace.keep] = reasons.get(trace.keep, 0) + 1
            return {"requests": self._requests, "sampled": self._sampled,
                    "kept": len(retained), "discarded": self._discarded,
                    "open": len(self._active), "by_reason": reasons}

    # -- export -------------------------------------------------------

    def _rows(self) -> List[dict]:
        """Kept traces as plain JSON rows, epoch-relative timestamps."""
        rows = []
        with self._lock:
            retained = sorted(list(self._pinned.values()) + list(self.kept),
                              key=lambda t: t.start)
            for trace in retained:
                rows.append({
                    "type": "reqtrace",
                    "trace_id": trace.trace_id,
                    "name": trace.name,
                    "outcome": trace.outcome,
                    "latency": round(trace.latency, 9),
                    "keep": trace.keep,
                    "spans": [{
                        "span_id": s["span_id"],
                        "parent_id": s["parent_id"],
                        "name": s["name"],
                        "start": round(s["start"] - self._epoch, 9),
                        "end": round(s["end"] - self._epoch, 9),
                        "args": s["args"],
                    } for s in sorted(trace.spans,
                                      key=lambda s: (s["start"],
                                                     s["span_id"]))],
                })
        return rows

    def to_jsonl(self) -> str:
        return "".join(json.dumps(row, sort_keys=True) + "\n"
                       for row in self._rows())

    def write_jsonl(self, path: PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    def to_chrome(self) -> dict:
        return chrome_from_rows(self._rows())

    def write_chrome_trace(self, path: PathLike) -> Path:
        doc = self.to_chrome()
        validate_chrome_trace(doc)    # raises ValueError on a bad doc
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=1), encoding="utf-8")
        return path


# ---------------------------------------------------------------------
# File-level helpers (shared by the tracer and the ``repro trace`` CLI)
# ---------------------------------------------------------------------

def read_trace_jsonl(path: PathLike) -> List[dict]:
    """Load kept-trace rows, skipping torn/foreign lines."""
    rows: List[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(row, dict) and row.get("type") == "reqtrace" \
                    and "trace_id" in row and "spans" in row:
                rows.append(row)
    return rows


def chrome_from_rows(rows: Sequence[dict]) -> dict:
    """Kept-trace rows -> chrome://tracing document (one lane per trace)."""
    events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0, "ts": 0,
        "args": {"name": "repro reqtrace"}}]
    for lane, row in enumerate(rows):
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": lane, "ts": 0,
            "args": {"name": f"trace {row['trace_id']}"
                             f" [{row.get('outcome')}]"}})
        for span in row["spans"]:
            args = {"trace_id": row["trace_id"],
                    "span_id": span["span_id"], **span["args"]}
            if span.get("parent_id") is not None:
                args["parent_id"] = span["parent_id"]
            events.append({
                "name": span["name"], "cat": "reqtrace", "ph": "X",
                "ts": round(max(span["start"], 0.0) * 1e6, 3),
                "dur": round((span["end"] - span["start"]) * 1e6, 3),
                "pid": 1, "tid": lane, "args": args})
    events.sort(key=lambda e: (e["ts"], e["tid"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_trace_list(rows: Sequence[dict], slowest: Optional[int] = None,
                      outcome: Optional[str] = None) -> str:
    """Table of kept traces, optionally filtered/sorted for the CLI."""
    picked = [r for r in rows
              if outcome is None or r.get("outcome") == outcome]
    if slowest is not None:
        picked = sorted(picked, key=lambda r: -float(r.get("latency", 0.0)))
        picked = picked[:slowest]
    if not picked:
        return "(no kept traces)"
    lines = [f"{'trace':<14} {'root':<16} {'outcome':<9} "
             f"{'latency':>10} {'keep':<9} spans"]
    for row in picked:
        lines.append(
            f"{row['trace_id']:<14} {row.get('name', ''):<16} "
            f"{str(row.get('outcome')):<9} "
            f"{float(row.get('latency', 0.0)):>9.6f}s "
            f"{str(row.get('keep')):<9} {len(row['spans'])}")
    return "\n".join(lines)


def render_trace_tree(row: dict) -> str:
    """One kept trace as an indented span tree."""
    spans = row["spans"]
    children: Dict[Optional[int], List[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)
    for kids in children.values():
        kids.sort(key=lambda s: (s["start"], s["span_id"]))
    lines = [f"trace {row['trace_id']}  root={row.get('name')}  "
             f"outcome={row.get('outcome')}  "
             f"latency={float(row.get('latency', 0.0)):.6f}s  "
             f"keep={row.get('keep')}"]

    def walk(parent: Optional[int], depth: int) -> None:
        for span in children.get(parent, []):
            args = " ".join(f"{k}={v}" for k, v in
                            sorted(span.get("args", {}).items()))
            dur = span["end"] - span["start"]
            lines.append(f"{'  ' * depth}- {span['name']} "
                         f"[{span['start']:.6f}s +{dur:.6f}s]"
                         + (f"  {args}" if args else ""))
            walk(span["span_id"], depth + 1)

    walk(None, 1)
    return "\n".join(lines)
