"""Size-aware Quick Demotion (paper §5 future work).

The unsized QD wrapper partitions *slots*; its size-aware counterpart
partitions *bytes*: a probationary FIFO with 10 % of the byte budget,
a byte-budgeted ghost remembering recently demoted keys (and their
sizes), and any size-aware policy as the main cache.  Semantics mirror
Fig. 4 exactly, with two size-specific rules:

* an object too large for the probationary queue is admitted straight
  into the main cache (it could never prove itself in probation);
* the ghost is bounded by the *bytes it represents*, the size-aware
  reading of "as many entries as the main cache".
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

from repro.sized.base import Key, SizedCacheListener, SizedEvictionPolicy
from repro.sized.policies import SizedClock
from repro.utils.linkedlist import KeyedList

SizedMainFactory = Callable[[int], SizedEvictionPolicy]


class _MainEvictionForwarder(SizedCacheListener):
    """Re-fires the inner main cache's evictions as composite events.

    Admissions are *not* forwarded: an object entering the main cache
    is either an internal probation->main graduation (no composite
    event -- the object stays cached) or a direct admission the
    composite reports itself.
    """

    def __init__(self, outer: "SizedQDCache") -> None:
        self._outer = outer

    def on_evict(self, key: Key, size: int) -> None:
        self._outer._notify_evict(key, size)


class SizedGhost:
    """Metadata-only FIFO bounded by the bytes its entries represent."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(
                f"capacity_bytes must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self._entries: "OrderedDict[Key, int]" = OrderedDict()

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, key: Key, size: int) -> None:
        """Remember *key*; oldest entries fall off the byte budget."""
        if self.capacity_bytes == 0:
            return
        if key in self._entries:
            self.used_bytes -= self._entries.pop(key)
        self._entries[key] = size
        self.used_bytes += size
        while self.used_bytes > self.capacity_bytes and len(self._entries) > 1:
            _, old_size = self._entries.popitem(last=False)
            self.used_bytes -= old_size

    def remove(self, key: Key) -> bool:
        """Forget *key*; returns whether it was present."""
        size = self._entries.pop(key, None)
        if size is None:
            return False
        self.used_bytes -= size
        return True


class SizedQDCache(SizedEvictionPolicy):
    """Byte-budgeted probationary FIFO + ghost around a sized policy."""

    def __init__(
        self,
        capacity_bytes: int,
        main_factory: SizedMainFactory,
        probation_fraction: float = 0.1,
        ghost_factor: float = 1.0,
    ) -> None:
        super().__init__(capacity_bytes)
        if capacity_bytes < 2:
            raise ValueError("SizedQDCache needs capacity_bytes >= 2")
        if not 0.0 < probation_fraction < 1.0:
            raise ValueError(
                f"probation_fraction must be in (0, 1), got "
                f"{probation_fraction}")
        self.probation_bytes = max(1, round(capacity_bytes
                                            * probation_fraction))
        self.main_bytes = capacity_bytes - self.probation_bytes
        if self.main_bytes < 1:
            self.main_bytes = 1
            self.probation_bytes = capacity_bytes - 1
        self.main = main_factory(self.main_bytes)
        self.main.add_listener(_MainEvictionForwarder(self))
        self.ghost = SizedGhost(round(self.main_bytes * ghost_factor))
        self._probation: KeyedList[Key] = KeyedList()  # node.extra = size
        self._probation_used = 0
        self.name = f"Sized-QD-{self.main.name}"

    # ------------------------------------------------------------------
    def request(self, key: Key, size: int) -> bool:
        self._check_size(size)
        node = self._probation.get(key)
        if node is not None:
            node.visited = True
            if node.extra != size:
                self._probation_used += size - node.extra
                node.extra = size
                self._drain_probation(0, skip=key)
            self._sync_used()
            self.stats.record(True, size)
            return True
        if key in self.main:
            self.main.request(key, size)
            self._sync_used()
            self.stats.record(True, size)
            return True

        self.stats.record(False, size)
        if not self.admits(size):
            return False
        if self.ghost.remove(key) or size > self.probation_bytes:
            # Proven once already -- or too large to ever prove itself
            # in probation: admit straight into the main cache.
            self.main.request(key, size)
            if key in self.main:
                self._notify_admit(key, size)
        else:
            self._drain_probation(size)
            node = self._probation.push_head(key)
            node.extra = size
            self._probation_used += size
            self._notify_admit(key, size)
        self._sync_used()
        return False

    def _drain_probation(self, incoming: int,
                         skip: Optional[Key] = None) -> None:
        """Demote from the probation tail until *incoming* bytes fit."""
        while self._probation_used + incoming > self.probation_bytes:
            node = self._probation.pop_tail()
            if node.key == skip and len(self._probation) >= 1:
                self._probation.push_head_node(node)
                continue
            # Either a normal tail demotion, or the resized object
            # itself no longer fits the probationary budget -- in which
            # case it graduates to the main cache (it was just hit).
            self._probation_used -= node.extra
            if node.visited or node.key == skip:
                # Internal graduation: stays cached, no composite event
                # (unless the main cache itself refuses the object).
                self.main.request(node.key, node.extra)
                if node.key not in self.main:
                    self._notify_evict(node.key, node.extra)
            else:
                self.ghost.add(node.key, node.extra)
                self._notify_evict(node.key, node.extra)

    def _sync_used(self) -> None:
        self.used_bytes = self._probation_used + self.main.used_bytes

    def admits(self, size: int) -> bool:
        """An object must fit one of the two segments to be cacheable."""
        return size <= max(self.main_bytes, self.probation_bytes)

    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._probation or key in self.main

    def __len__(self) -> int:
        return len(self._probation) + len(self.main)

    def in_probation(self, key: Key) -> bool:
        """Whether *key* sits in the probationary FIFO."""
        return key in self._probation

    def in_main(self, key: Key) -> bool:
        """Whether *key* sits in the main cache."""
        return key in self.main


class SizedQDLPFIFO(SizedQDCache):
    """Size-aware QD-LP-FIFO: byte-budgeted probation + 2-bit CLOCK."""

    def __init__(self, capacity_bytes: int,
                 probation_fraction: float = 0.1,
                 ghost_factor: float = 1.0,
                 clock_bits: int = 2) -> None:
        super().__init__(
            capacity_bytes,
            main_factory=lambda b: SizedClock(b, bits=clock_bits),
            probation_fraction=probation_fraction,
            ghost_factor=ghost_factor,
        )
        self.name = "Sized-QD-LP-FIFO"


__all__ = ["SizedGhost", "SizedQDCache", "SizedQDLPFIFO",
           "SizedMainFactory"]
