"""Size-aware cache abstraction (paper §5 future work).

The paper deliberately ignores object sizes "to focus on how access
patterns affect cache efficiency", and closes §5 with: "designing
size-aware Lazy Promotion and Quick Demotion techniques are worth
pursuing in the future."  This subpackage pursues them.

A size-aware cache has a *byte* capacity; each object consumes its own
size.  Two efficiency metrics coexist (and routinely disagree):

* **object miss ratio** -- fraction of requests that missed;
* **byte miss ratio** -- fraction of requested bytes that missed,
  which is what origin bandwidth cares about.

Objects larger than the capacity bypass the cache (counted as misses).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Hashable, List

from repro.core.base import validate_capacity

Key = Hashable


class SizedCacheListener:
    """Observer receiving sized-cache content-change events.

    The sized counterpart of :class:`~repro.core.base.CacheListener`,
    carrying the object's *size* so byte-level consumers (the storage
    hierarchy's demotion path, write-amplification accounting) need no
    side table.  ``on_admit`` fires when an object enters the cache's
    data store; ``on_evict`` when it leaves -- including the
    resized-object-no-longer-fits drop paths.  Internal moves between
    segments of a composite cache (probation -> main in the sized QD
    wrapper) fire neither: the object stays cached.
    """

    def on_admit(self, key: Key, size: int) -> None:
        """Called when *key* (of *size* bytes) enters the cache."""

    def on_evict(self, key: Key, size: int) -> None:
        """Called when *key* (of *size* bytes) leaves the cache."""


@dataclass
class SizedStats:
    """Request- and byte-level hit/miss accounting."""

    hits: int = 0
    misses: int = 0
    hit_bytes: int = 0
    miss_bytes: int = 0

    @property
    def requests(self) -> int:
        """Total requests observed."""
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Object (request-count) miss ratio."""
        total = self.requests
        if total == 0:
            return 0.0
        return self.misses / total

    @property
    def byte_miss_ratio(self) -> float:
        """Byte-weighted miss ratio."""
        total = self.hit_bytes + self.miss_bytes
        if total == 0:
            return 0.0
        return self.miss_bytes / total

    def record(self, hit: bool, size: int) -> None:
        """Record one request outcome."""
        if hit:
            self.hits += 1
            self.hit_bytes += size
        else:
            self.misses += 1
            self.miss_bytes += size

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = self.misses = 0
        self.hit_bytes = self.miss_bytes = 0


class SizedEvictionPolicy(ABC):
    """Base class for byte-budgeted eviction policies.

    Subclasses implement :meth:`request`, never exceed
    ``capacity_bytes``, and keep ``used_bytes`` exact.  Re-requesting a
    key with a different size is treated as an update: the cached copy
    is resized (eviction runs if the cache overflows as a result).
    """

    name: str = "sized-abstract"

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity_bytes = validate_capacity(
            capacity_bytes, what="capacity_bytes")
        self.used_bytes = 0
        self.stats = SizedStats()
        self._listeners: List[SizedCacheListener] = []

    @abstractmethod
    def request(self, key: Key, size: int) -> bool:
        """Process one request; returns True on a hit."""

    # ------------------------------------------------------------------
    # Listener plumbing
    # ------------------------------------------------------------------
    def add_listener(self, listener: SizedCacheListener) -> None:
        """Register *listener* for admit/evict events."""
        self._listeners.append(listener)

    def remove_listener(self, listener: SizedCacheListener) -> None:
        """Unregister a previously added *listener*."""
        self._listeners.remove(listener)

    def _notify_admit(self, key: Key, size: int) -> None:
        for listener in self._listeners:
            listener.on_admit(key, size)

    def _notify_evict(self, key: Key, size: int) -> None:
        for listener in self._listeners:
            listener.on_evict(key, size)

    @abstractmethod
    def __contains__(self, key: Key) -> bool:
        """Whether *key* is cached."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of cached objects."""

    def _check_size(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")

    def admits(self, size: int) -> bool:
        """Whether an object of *size* can ever fit."""
        return size <= self.capacity_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{type(self).__name__} name={self.name!r} "
                f"bytes={self.used_bytes}/{self.capacity_bytes}>")


__all__ = ["Key", "SizedStats", "SizedCacheListener",
           "SizedEvictionPolicy"]
