"""Size-aware caching: the paper's §5 future-work direction, built.

* :mod:`repro.sized.base` -- byte-budgeted policy abstraction with
  object- and byte-level miss accounting.
* :mod:`repro.sized.policies` -- Sized-FIFO/LRU/CLOCK and GDSF.
* :mod:`repro.sized.qd` -- size-aware Quick Demotion and
  Sized-QD-LP-FIFO.
* :mod:`repro.sized.workloads` -- deterministic heavy-tailed object
  sizes for any key trace.
* :mod:`repro.sized.simulator` -- (keys, sizes) replay.
"""

from repro.sized.base import (
    SizedCacheListener,
    SizedEvictionPolicy,
    SizedStats,
)
from repro.sized.policies import GDSF, SizedClock, SizedFIFO, SizedLRU
from repro.sized.qd import SizedGhost, SizedQDCache, SizedQDLPFIFO
from repro.sized.simulator import SizedSimResult, simulate_sized
from repro.sized.workloads import (
    attach_sizes,
    lognormal_size,
    pareto_size,
    total_bytes,
    unique_bytes,
)

__all__ = [
    "SizedCacheListener",
    "SizedEvictionPolicy",
    "SizedStats",
    "GDSF",
    "SizedClock",
    "SizedFIFO",
    "SizedLRU",
    "SizedGhost",
    "SizedQDCache",
    "SizedQDLPFIFO",
    "SizedSimResult",
    "simulate_sized",
    "attach_sizes",
    "lognormal_size",
    "pareto_size",
    "total_bytes",
    "unique_bytes",
]
