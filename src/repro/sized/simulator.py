"""Simulation for size-aware policies."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sized.base import SizedEvictionPolicy
from repro.sized.workloads import SizedTrace


@dataclass(frozen=True)
class SizedSimResult:
    """Outcome of one sized simulation run."""

    policy: str
    requests: int
    misses: int
    miss_bytes: int
    total_bytes: int

    @property
    def miss_ratio(self) -> float:
        """Object (request-count) miss ratio."""
        if self.requests == 0:
            return 0.0
        return self.misses / self.requests

    @property
    def byte_miss_ratio(self) -> float:
        """Byte-weighted miss ratio."""
        if self.total_bytes == 0:
            return 0.0
        return self.miss_bytes / self.total_bytes


def simulate_sized(policy: SizedEvictionPolicy,
                   sized: SizedTrace) -> SizedSimResult:
    """Replay a (keys, sizes) trace through a sized policy."""
    keys, sizes = sized
    if len(keys) != len(sizes):
        raise ValueError("keys and sizes must have equal length")
    request = policy.request
    for key, size in zip(keys, sizes):
        request(key, size)
    stats = policy.stats
    return SizedSimResult(
        policy=policy.name,
        requests=stats.requests,
        misses=stats.misses,
        miss_bytes=stats.miss_bytes,
        total_bytes=stats.hit_bytes + stats.miss_bytes,
    )


__all__ = ["SizedSimResult", "simulate_sized"]
