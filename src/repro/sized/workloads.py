"""Sized workloads: attach realistic object sizes to key traces.

Web object sizes are famously heavy-tailed; this module assigns each
object a size drawn from a log-normal (body) or Pareto (tail)
distribution, deterministically per key, so the same key always has
the same size regardless of which trace or generator produced it.
"""

from __future__ import annotations

import zlib
from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.traces.trace import Trace

#: A sized trace: parallel (keys, sizes) lists.
SizedTrace = Tuple[List[int], List[int]]


def _key_uniform(key: int, seed: int) -> float:
    """A deterministic uniform(0,1) value derived from the key."""
    payload = f"{seed}:{key}".encode()
    return (zlib.crc32(payload) & 0xFFFFFFFF) / 2 ** 32


def lognormal_size(key: int, seed: int = 0, median: float = 4096.0,
                   sigma: float = 1.5, max_size: int = 2 ** 24) -> int:
    """Log-normal object size for *key* (deterministic)."""
    u = min(max(_key_uniform(key, seed), 1e-9), 1 - 1e-9)
    # Inverse-CDF via the probit approximation (Acklam).
    z = _probit(u)
    size = median * float(np.exp(sigma * z))
    return max(1, min(int(size), max_size))


def pareto_size(key: int, seed: int = 0, scale: float = 1024.0,
                alpha: float = 1.5, max_size: int = 2 ** 24) -> int:
    """Pareto (heavy-tailed) object size for *key* (deterministic)."""
    u = min(max(_key_uniform(key, seed), 1e-9), 1 - 1e-9)
    size = scale / (1.0 - u) ** (1.0 / alpha)
    return max(1, min(int(size), max_size))


def _probit(u: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if u < p_low:
        q = float(np.sqrt(-2 * np.log(u)))
        return ((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                 * q + c[5])
                / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))
    if u > p_high:
        q = float(np.sqrt(-2 * np.log(1 - u)))
        return -((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                  * q + c[5])
                 / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))
    q = u - 0.5
    r = q * q
    return ((((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4])
             * r + a[5]) * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4])
               * r + 1))


def attach_sizes(
    trace: Union[Trace, Sequence[int], Iterable[int]],
    distribution: str = "lognormal",
    seed: int = 0,
    **params,
) -> SizedTrace:
    """Pair a key trace with deterministic per-object sizes.

    ``distribution`` is ``"lognormal"`` (web bodies) or ``"pareto"``
    (heavier tail); extra keyword arguments are forwarded to the size
    function.
    """
    if isinstance(trace, Trace):
        keys = trace.as_list()
    else:
        keys = list(trace)
    if distribution == "lognormal":
        size_fn = lognormal_size
    elif distribution == "pareto":
        size_fn = pareto_size
    else:
        raise ValueError(
            f"distribution must be 'lognormal' or 'pareto', got "
            f"{distribution!r}")
    cache: dict = {}
    sizes = []
    for key in keys:
        size = cache.get(key)
        if size is None:
            size = size_fn(key, seed=seed, **params)
            cache[key] = size
        sizes.append(size)
    return keys, sizes


def total_bytes(sized: SizedTrace) -> int:
    """Total bytes requested by a sized trace."""
    return sum(sized[1])


def unique_bytes(sized: SizedTrace) -> int:
    """Total footprint (sum of distinct objects' sizes)."""
    keys, sizes = sized
    seen = {}
    for key, size in zip(keys, sizes):
        seen[key] = size
    return sum(seen.values())


__all__ = [
    "SizedTrace",
    "lognormal_size",
    "pareto_size",
    "attach_sizes",
    "total_bytes",
    "unique_bytes",
]
