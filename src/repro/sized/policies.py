"""Size-aware baseline policies: FIFO, LRU, CLOCK, GDSF.

These are the substrate the size-aware Quick Demotion wrapper builds
on.  GDSF (Greedy-Dual-Size-Frequency, a descendant of Cao & Irani's
GreedyDual-Size) is the classic size-aware web-caching policy and
serves as the strong baseline: priority = L + frequency / size, where
L is an inflation clock equal to the last evicted priority.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.sized.base import Key, SizedEvictionPolicy
from repro.utils.linkedlist import KeyedList


class SizedFIFO(SizedEvictionPolicy):
    """FIFO with a byte budget."""

    name = "Sized-FIFO"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._queue: "OrderedDict[Key, int]" = OrderedDict()

    def request(self, key: Key, size: int) -> bool:
        self._check_size(size)
        cached = self._queue.get(key)
        if cached is not None:
            if cached != size:
                self._resize(key, cached, size)
            self.stats.record(True, size)
            return True
        self.stats.record(False, size)
        if not self.admits(size):
            return False
        self._make_room(size)
        self._queue[key] = size
        self.used_bytes += size
        self._notify_admit(key, size)
        return False

    def _resize(self, key: Key, old: int, new: int) -> None:
        self.used_bytes += new - old
        self._queue[key] = new
        while self.used_bytes > self.capacity_bytes and len(self._queue) > 1:
            self._evict_one(skip=key)
        if self.used_bytes > self.capacity_bytes:
            # The resized object alone no longer fits: drop it.
            dropped = self._queue.pop(key)
            self.used_bytes -= dropped
            self._notify_evict(key, dropped)

    def _make_room(self, size: int) -> None:
        while self.used_bytes + size > self.capacity_bytes:
            self._evict_one()

    def _evict_one(self, skip: Optional[Key] = None) -> None:
        for victim in self._queue:
            if victim != skip:
                break
        else:  # pragma: no cover - skip is the only resident
            return
        victim_size = self._queue.pop(victim)
        self.used_bytes -= victim_size
        self._notify_evict(victim, victim_size)

    def __contains__(self, key: Key) -> bool:
        return key in self._queue

    def __len__(self) -> int:
        return len(self._queue)


class SizedLRU(SizedEvictionPolicy):
    """LRU with a byte budget."""

    name = "Sized-LRU"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._queue: "OrderedDict[Key, int]" = OrderedDict()

    def request(self, key: Key, size: int) -> bool:
        self._check_size(size)
        cached = self._queue.get(key)
        if cached is not None:
            self._queue.move_to_end(key)
            if cached != size:
                self.used_bytes += size - cached
                self._queue[key] = size
                self._shrink(skip=key)
            self.stats.record(True, size)
            return True
        self.stats.record(False, size)
        if not self.admits(size):
            return False
        while self.used_bytes + size > self.capacity_bytes:
            victim, victim_size = self._queue.popitem(last=False)
            self.used_bytes -= victim_size
            self._notify_evict(victim, victim_size)
        self._queue[key] = size
        self.used_bytes += size
        self._notify_admit(key, size)
        return False

    def _shrink(self, skip: Key) -> None:
        while self.used_bytes > self.capacity_bytes and len(self._queue) > 1:
            victim = next(k for k in self._queue if k != skip)
            victim_size = self._queue.pop(victim)
            self.used_bytes -= victim_size
            self._notify_evict(victim, victim_size)
        if self.used_bytes > self.capacity_bytes:
            # The resized object alone no longer fits: drop it.
            dropped = self._queue.pop(skip)
            self.used_bytes -= dropped
            self._notify_evict(skip, dropped)

    def __contains__(self, key: Key) -> bool:
        return key in self._queue

    def __len__(self) -> int:
        return len(self._queue)


class SizedClock(SizedEvictionPolicy):
    """k-bit CLOCK with a byte budget (size-aware Lazy Promotion).

    Hits only bump the node's frequency counter -- no reordering, the
    LP property -- and the eviction hand reinserts nonzero-frequency
    objects with the counter decremented, exactly like the unsized
    2-bit CLOCK of §3.
    """

    def __init__(self, capacity_bytes: int, bits: int = 2) -> None:
        super().__init__(capacity_bytes)
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        self.bits = bits
        self.max_freq = (1 << bits) - 1
        self.name = f"Sized-{bits}-bit-CLOCK"
        self._queue: KeyedList[Key] = KeyedList()  # node.extra = size

    def request(self, key: Key, size: int) -> bool:
        self._check_size(size)
        node = self._queue.get(key)
        if node is not None:
            if node.freq < self.max_freq:
                node.freq += 1
            if node.extra != size:
                self.used_bytes += size - node.extra
                node.extra = size
                self._make_room(0, skip=key)
            self.stats.record(True, size)
            return True
        self.stats.record(False, size)
        if not self.admits(size):
            return False
        self._make_room(size)
        node = self._queue.push_head(key)
        node.extra = size
        self.used_bytes += size
        self._notify_admit(key, size)
        return False

    def _make_room(self, size: int, skip: Optional[Key] = None) -> None:
        while self.used_bytes + size > self.capacity_bytes:
            if skip is not None and len(self._queue) == 1:
                # Only the resized object remains and it no longer
                # fits on its own: drop it.
                node = self._queue.pop_tail()
                self.used_bytes -= node.extra
                self._notify_evict(node.key, node.extra)
                return
            node = self._queue.pop_tail()
            if node.key == skip:
                self._queue.push_head_node(node)
                continue
            if node.freq > 0:
                node.freq -= 1
                self._queue.push_head_node(node)
            else:
                self.used_bytes -= node.extra
                self._notify_evict(node.key, node.extra)

    def __contains__(self, key: Key) -> bool:
        return key in self._queue

    def __len__(self) -> int:
        return len(self._queue)


class GDSF(SizedEvictionPolicy):
    """Greedy-Dual-Size-Frequency.

    Each object's priority is ``L + frequency / size``; eviction takes
    the minimum-priority object and raises the inflation clock ``L``
    to that priority, so long-idle objects age out relative to new
    arrivals.  Favouring small, hot objects gives GDSF excellent
    *object* miss ratios on web workloads (often at some cost in byte
    miss ratio).
    """

    name = "GDSF"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._inflation = 0.0
        #: key -> (priority, frequency, size)
        self._meta: Dict[Key, Tuple[float, int, int]] = {}
        self._heap: List[Tuple[float, int, Key]] = []
        self._counter = 0

    def _push(self, key: Key, freq: int, size: int) -> None:
        priority = self._inflation + freq / size
        self._meta[key] = (priority, freq, size)
        self._counter += 1
        heapq.heappush(self._heap, (priority, self._counter, key))

    def request(self, key: Key, size: int) -> bool:
        self._check_size(size)
        meta = self._meta.get(key)
        if meta is not None:
            _, freq, cached_size = meta
            if cached_size != size:
                self.used_bytes += size - cached_size
            self._push(key, freq + 1, size)
            self._shrink(skip=key)
            self.stats.record(True, size)
            return True
        self.stats.record(False, size)
        if not self.admits(size):
            return False
        while self.used_bytes + size > self.capacity_bytes:
            self._evict_one()
        self._push(key, 1, size)
        self.used_bytes += size
        self._notify_admit(key, size)
        return False

    def _evict_one(self) -> None:
        while True:
            priority, counter, key = heapq.heappop(self._heap)
            meta = self._meta.get(key)
            if meta is not None and meta[0] == priority:
                # Only the newest heap entry for a key is live.
                del self._meta[key]
                self.used_bytes -= meta[2]
                self._inflation = priority
                self._notify_evict(key, meta[2])
                return

    def _shrink(self, skip: Key) -> None:
        # Resizing an object upward can overflow the budget; evict
        # other objects (never the one just touched).  The skip entry
        # is set aside, not pushed back: when the resized object is
        # the minimum-priority live entry, an immediate push-back
        # would pop it again forever.
        skip_entry: Optional[Tuple[float, int, Key]] = None
        while self.used_bytes > self.capacity_bytes:
            if skip_entry is not None and len(self._meta) == 1:
                # Everything else is gone and the resized object
                # alone still does not fit: drop it too.
                priority, _, key = skip_entry
                dropped = self._meta.pop(key)[2]
                self.used_bytes -= dropped
                # The evictions above may have raised the clock past
                # the stashed priority; never wind it back.
                self._inflation = max(self._inflation, priority)
                self._notify_evict(key, dropped)
                return
            priority, counter, key = heapq.heappop(self._heap)
            meta = self._meta.get(key)
            if meta is None or meta[0] != priority:
                continue
            if key == skip:
                if len(self._meta) == 1:
                    # The resized object alone no longer fits: drop it.
                    del self._meta[key]
                    self.used_bytes -= meta[2]
                    self._inflation = priority
                    self._notify_evict(key, meta[2])
                    return
                skip_entry = (priority, counter, key)
                continue
            del self._meta[key]
            self.used_bytes -= meta[2]
            self._inflation = priority
            self._notify_evict(key, meta[2])
        if skip_entry is not None:
            heapq.heappush(self._heap, skip_entry)

    def __contains__(self, key: Key) -> bool:
        return key in self._meta

    def __len__(self) -> int:
        return len(self._meta)


__all__ = ["SizedFIFO", "SizedLRU", "SizedClock", "GDSF"]
