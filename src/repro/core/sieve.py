"""SIEVE: the single-queue lazy-promotion algorithm this paper inspired.

SIEVE (Zhang et al., NSDI'24 "SIEVE is simpler than LRU") distils lazy
promotion + quick demotion into one FIFO queue and one moving *hand*:

* A hit sets the object's ``visited`` bit (no movement, no lock).
* On eviction, the hand scans from its current position toward the
  head, clearing ``visited`` bits, and evicts the first unvisited
  object it meets.  Crucially -- unlike CLOCK -- survivors are *not*
  reinserted at the head; they keep their queue position, so new
  objects inserted at the head are examined by the hand sooner than
  old survivors.  That asymmetry is quick demotion.

Included as a "future work" extension alongside S3-FIFO.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import EvictionPolicy, Key
from repro.utils.linkedlist import KeyedList, Node


class Sieve(EvictionPolicy):
    """The SIEVE eviction algorithm."""

    name = "SIEVE"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._queue: KeyedList[Key] = KeyedList()
        self._hand: Optional[Node[Key]] = None

    def request(self, key: Key) -> bool:
        node = self._queue.get(key)
        if node is not None:
            node.visited = True
            self._record(True)
            self._notify_hit(key)
            return True
        self._record(False)
        if len(self._queue) >= self.capacity:
            self._evict_one()
        self._queue.push_head(key)
        self._notify_admit(key)
        return False

    def _evict_one(self) -> None:
        """Advance the hand tail -> head until an unvisited object."""
        node = self._hand if self._hand is not None else self._queue.tail
        assert node is not None, "evict called on empty queue"
        while node.visited:
            node.visited = False
            node = node.prev if node.prev is not None else self._queue.tail
        # The hand rests on the victim's predecessor (toward the head);
        # when the victim was the head, the next scan restarts at the
        # tail -- exactly the published algorithm's wrap-around.
        self._hand = node.prev
        self._queue.remove_node(node)
        self._notify_evict(node.key)

    def __contains__(self, key: Key) -> bool:
        return key in self._queue

    def __len__(self) -> int:
        return len(self._queue)


__all__ = ["Sieve"]
