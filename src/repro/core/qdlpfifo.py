"""QD-LP-FIFO: the paper's headline simple-yet-efficient algorithm (§4).

QD-LP-FIFO composes the two techniques this paper introduces on top of
plain FIFO:

* **Quick Demotion** -- a small (10 %) probationary FIFO plus a ghost
  FIFO with as many entries as the main cache (Fig. 4), and
* **Lazy Promotion** -- a 2-bit CLOCK main cache (§3), which promotes
  only at eviction time.

It uses only FIFO queues, needs at most one metadata update per cache
hit, takes no locks on any operation, and -- per the paper's evaluation
on 5307 traces -- achieves lower miss ratios than ARC, LIRS, CACHEUS,
LeCaR and LHD on average (Fig. 5).
"""

from __future__ import annotations

from repro.core.clock import KBitClock
from repro.core.qd import QDCache


class QDLPFIFO(QDCache):
    """Probationary FIFO + ghost FIFO + 2-bit-CLOCK main cache."""

    def __init__(
        self,
        capacity: int,
        probation_fraction: float = 0.1,
        ghost_factor: float = 1.0,
        clock_bits: int = 2,
    ) -> None:
        super().__init__(
            capacity,
            main_factory=lambda c: KBitClock(c, bits=clock_bits),
            probation_fraction=probation_fraction,
            ghost_factor=ghost_factor,
        )
        self.name = "QD-LP-FIFO"


__all__ = ["QDLPFIFO"]
