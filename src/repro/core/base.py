"""Core cache abstraction.

The paper (Fig. 1) models a cache as a logically total-ordered queue with
four operations: *insertion*, *removal*, *promotion*, and *demotion*.
Insertion and removal are user-driven; promotion and demotion are internal
operations the eviction algorithm uses to maintain its ordering.

This module defines :class:`EvictionPolicy`, the interface every eviction
algorithm in this library implements, along with the bookkeeping helpers
shared by all policies:

* :class:`CacheStats` -- hit/miss accounting.
* :class:`CacheListener` -- observer interface receiving admit/evict
  events, used by the resource-consumption profiler (Fig. 3) and by
  wrapper policies such as the Quick Demotion wrapper (Fig. 4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional

Key = Hashable


def validate_capacity(capacity, what: str = "capacity") -> int:
    """Validate a cache capacity eagerly; returns it as an ``int``.

    Shared by every capacity-carrying constructor (object policies,
    sized policies, front caches) so capacity 0, negative values,
    fractions and booleans are rejected at construction time with one
    clear, suggestion-free message -- never deferred to the first
    insert, and never silently truncated (``capacity=2.7`` used to mean
    ``capacity=2`` in the sized layer).
    """
    if isinstance(capacity, (bool, str, bytes)):
        # int("10") would succeed, and int(True) == 1: both are caller
        # bugs that must not round-trip into a working cache.
        raise TypeError(
            f"{what} must be an integer >= 1, got {capacity!r}")
    try:
        as_int = int(capacity)
    except (TypeError, ValueError):
        raise TypeError(
            f"{what} must be an integer >= 1, "
            f"got {capacity!r}") from None
    if as_int != capacity:
        raise ValueError(
            f"{what} must be a whole number, got {capacity!r}")
    if as_int < 1:
        raise ValueError(f"{what} must be >= 1, got {capacity}")
    return as_int


@dataclass
class CacheStats:
    """Hit/miss counters for a single policy instance.

    ``hits + misses == requests`` always holds; this is enforced by
    property-based tests.

    ``promotions`` counts *structural reorderings* -- moving an object
    within the policy's queue(s) on a hit or reinserting it at
    eviction time.  This is the operation that costs six pointer
    updates under a lock in a production LRU (paper §2), so
    promotions-per-request is the simulator's honest proxy for the
    paper's throughput/scalability argument: LRU pays one per hit,
    lazy-promotion policies pay (amortised) far less, FIFO pays zero.
    """

    hits: int = 0
    misses: int = 0
    promotions: int = 0

    @property
    def requests(self) -> int:
        """Total number of requests observed."""
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Fraction of requests that missed.  0.0 when no requests yet."""
        total = self.requests
        if total == 0:
            return 0.0
        return self.misses / total

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests that hit.  0.0 when no requests yet."""
        total = self.requests
        if total == 0:
            return 0.0
        return self.hits / total

    def record(self, hit: bool) -> None:
        """Record the outcome of one request."""
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    @property
    def promotions_per_request(self) -> float:
        """Mean structural reorderings per request (0.0 if idle)."""
        total = self.requests
        if total == 0:
            return 0.0
        return self.promotions / total

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.promotions = 0


class CacheListener:
    """Observer receiving cache content-change events.

    Subclass and override the methods you care about.  ``on_admit`` fires
    when an object enters the cache's *data* store (metadata-only ghost
    entries do not count); ``on_evict`` fires when it leaves.  Internal
    moves between segments of a composite cache (e.g. probationary ->
    main in the QD wrapper) do not fire events: the object stays cached.
    """

    def on_admit(self, key: Key) -> None:
        """Called when *key* is admitted into the cache."""

    def on_evict(self, key: Key) -> None:
        """Called when *key* is evicted from the cache."""

    def on_hit(self, key: Key) -> None:
        """Called when a request for *key* hits."""

    def on_promote(self, key: Key) -> None:
        """Called on a structural reordering of *key* (see CacheStats).

        ``key`` is the reordered object when the policy knows it cheaply
        (queue rotations, probation graduations) and ``None`` for bulk
        or anonymous reorderings.
        """

    def on_ghost_hit(self, key: Key) -> None:
        """Called when a miss for *key* was found in a ghost queue.

        Fired by quick-demotion policies (QDCache, S3-FIFO, 2Q) when a
        previously demoted object returns and is readmitted directly
        into the main cache.
        """


class EvictionPolicy(ABC):
    """Abstract base for all eviction algorithms.

    A policy manages a set of cached keys subject to a fixed ``capacity``
    (measured in objects; the paper assumes uniform object sizes to focus
    on access-pattern effects).  The single entry point is
    :meth:`request`, which performs a lookup and, on a miss, admits the
    key -- evicting as needed.

    Subclasses must implement :meth:`request`, :meth:`__contains__` and
    :meth:`__len__`, must never exceed ``capacity``, and must call
    :meth:`_record` exactly once per request and the ``_notify_*``
    helpers on every admit/evict.
    """

    #: Human-readable algorithm name; overridden by subclasses.
    name: str = "abstract"

    def __init__(self, capacity: int) -> None:
        # Validate eagerly with a precise message: a bad capacity used
        # to surface only deep inside the simulation loop (or worse,
        # silently truncate -- capacity=2.7 meant capacity=2).
        self.capacity = validate_capacity(capacity)
        self.stats = CacheStats()
        self._listeners: List[CacheListener] = []

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @abstractmethod
    def request(self, key: Key) -> bool:
        """Process one request for *key*.

        Returns ``True`` on a cache hit and ``False`` on a miss.  On a
        miss the key is admitted (possibly evicting another key).
        """

    @abstractmethod
    def __contains__(self, key: Key) -> bool:
        """Whether *key* currently resides in the cache (data, not ghost)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of cached objects."""

    # ------------------------------------------------------------------
    # Listener plumbing
    # ------------------------------------------------------------------
    def add_listener(self, listener: CacheListener) -> None:
        """Register *listener* for admit/evict/hit events."""
        self._listeners.append(listener)

    def remove_listener(self, listener: CacheListener) -> None:
        """Unregister a previously added *listener*."""
        self._listeners.remove(listener)

    def _notify_admit(self, key: Key) -> None:
        for listener in self._listeners:
            listener.on_admit(key)

    def _notify_evict(self, key: Key) -> None:
        for listener in self._listeners:
            listener.on_evict(key)

    def _notify_hit(self, key: Key) -> None:
        for listener in self._listeners:
            listener.on_hit(key)

    def _notify_ghost_hit(self, key: Key) -> None:
        for listener in self._listeners:
            listener.on_ghost_hit(key)

    def _record(self, hit: bool) -> None:
        """Record a request outcome and fire the hit event if needed."""
        self.stats.record(hit)

    def _promoted(self, count: int = 1, key: Optional[Key] = None) -> None:
        """Record *count* structural reorderings (see CacheStats).

        Fires ``on_promote`` *count* times per listener with the
        reordered *key* (``None`` when the call site cannot name it
        cheaply), so a tracer's promote total matches
        ``stats.promotions`` exactly.  The listener loop is guarded so
        uninstrumented policies pay only the counter increment on the
        hot path.
        """
        self.stats.promotions += count
        if self._listeners:
            for listener in self._listeners:
                for _ in range(count):
                    listener.on_promote(key)

    @property
    def promotion_count(self) -> int:
        """Total structural reorderings, including inner caches'.

        Composite policies (e.g. the QD wrapper) override this to
        aggregate their segments.
        """
        return self.stats.promotions

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def warm(self, keys: Iterable[Key]) -> None:
        """Feed *keys* through the cache, then reset the statistics.

        Useful to measure steady-state behaviour without cold-start
        misses.
        """
        for key in keys:
            self.request(key)
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} name={self.name!r} "
            f"capacity={self.capacity} len={len(self)}>"
        )


class OfflinePolicy(EvictionPolicy):
    """Base for policies that need the whole trace in advance (Belady).

    The simulator calls :meth:`prepare` with the full request sequence
    before issuing any :meth:`request` calls; requests must then be
    issued in exactly the prepared order.
    """

    @abstractmethod
    def prepare(self, keys: Iterable[Key]) -> None:
        """Precompute whatever future knowledge the policy needs."""


@dataclass
class EvictionEvent:
    """A single admit->evict lifetime, as recorded by profilers."""

    key: Key
    admit_time: int
    evict_time: int
    hits: int = 0

    @property
    def residency(self) -> int:
        """Number of requests the object spent in the cache."""
        return self.evict_time - self.admit_time


__all__ = [
    "Key",
    "validate_capacity",
    "CacheStats",
    "CacheListener",
    "EvictionPolicy",
    "OfflinePolicy",
    "EvictionEvent",
]
