"""Adaptive probationary sizing for QD-LP-FIFO (paper §5).

The paper is explicitly skeptical of adaptivity: ARC-style adaptive
queue sizing "is not optimal" and "manually limiting the queue size
... often reduce[s] miss ratios"; QD deliberately uses a *tiny fixed*
10 % probationary queue.  This class implements the obvious adaptive
alternative -- hill-climbing the probationary share on windowed miss
ratio -- precisely so the claim can be tested: experiment A8 compares
it against the fixed 10 % design (and, reproducing the paper's
judgement, rarely finds the adaptation worth its complexity).

Mechanics: every ``window`` requests the controller compares the
window's miss ratio with the previous window's; an improvement keeps
the last direction of change, a regression reverses it, and the
probationary share moves one multiplicative step within
``[min_fraction, max_fraction]``.  Budget freed from (or taken by) the
probationary queue is transferred to the 2-bit-CLOCK main cache via
its ``resize``.
"""

from __future__ import annotations

from repro.core.base import Key
from repro.core.clock import KBitClock
from repro.core.qd import QDCache


class AdaptiveQDLPFIFO(QDCache):
    """QD-LP-FIFO with a hill-climbing probationary share."""

    def __init__(
        self,
        capacity: int,
        initial_fraction: float = 0.1,
        min_fraction: float = 0.02,
        max_fraction: float = 0.5,
        step: float = 1.3,
        window: int = 0,
        clock_bits: int = 2,
    ) -> None:
        super().__init__(
            capacity,
            main_factory=lambda c: KBitClock(c, bits=clock_bits),
            probation_fraction=initial_fraction,
        )
        if not 0.0 < min_fraction <= initial_fraction <= max_fraction < 1.0:
            raise ValueError(
                "need 0 < min_fraction <= initial_fraction <= "
                "max_fraction < 1")
        if step <= 1.0:
            raise ValueError(f"step must be > 1, got {step}")
        self.name = "Adaptive-QD-LP-FIFO"
        self.fraction = initial_fraction
        self.min_fraction = min_fraction
        self.max_fraction = max_fraction
        self.step = step
        self.window = window if window > 0 else max(256, capacity)
        self._direction = 1.0  # start by trying a larger probation
        self._window_requests = 0
        self._window_misses = 0
        self._previous_ratio: float = -1.0

    # ------------------------------------------------------------------
    def request(self, key: Key) -> bool:
        hit = super().request(key)
        self._window_requests += 1
        if not hit:
            self._window_misses += 1
        if self._window_requests >= self.window:
            self._adapt()
        return hit

    def _adapt(self) -> None:
        ratio = self._window_misses / self._window_requests
        if self._previous_ratio >= 0.0:
            if ratio > self._previous_ratio:
                self._direction = -self._direction  # it got worse: back off
            factor = self.step if self._direction > 0 else 1.0 / self.step
            self.fraction = min(self.max_fraction,
                                max(self.min_fraction,
                                    self.fraction * factor))
            self._apply_fraction()
        self._previous_ratio = ratio
        self._window_requests = 0
        self._window_misses = 0

    def _apply_fraction(self) -> None:
        """Rebalance the slot budget between probation and main."""
        new_probation = max(1, round(self.capacity * self.fraction))
        if new_probation >= self.capacity:
            new_probation = self.capacity - 1
        if new_probation == self.probation_capacity:
            return
        self.probation_capacity = new_probation
        self.main_capacity = self.capacity - new_probation
        # Shrinking probation demotes its tail via the normal path so
        # accessed objects still graduate rather than vanish.
        while len(self._probation) > self.probation_capacity:
            self._demote_one()
        self.main.resize(self.main_capacity)
        self.ghost.max_entries = self.main_capacity

    @property
    def probation_fraction(self) -> float:
        """The current (adapted) probationary share."""
        return self.fraction


__all__ = ["AdaptiveQDLPFIFO"]
