"""S3-FIFO: Simple Scalable caching with three Static FIFO queues.

S3-FIFO is the algorithm this HotOS paper's ideas grew into (Yang et
al., SOSP'23 "FIFO queues are all you need for cache eviction").  It is
included here as the paper's envisioned "LEGO" future work: quick
demotion via a small FIFO + ghost, and lazy promotion via reinsertion
in the main FIFO.

Structure:

* **S** (small): 10 % of the cache space, a plain FIFO.
* **M** (main): 90 % of the cache space, a FIFO with lazy promotion --
  objects with a nonzero frequency counter are reinserted with the
  counter decremented instead of being evicted.
* **G** (ghost): metadata-only FIFO with as many entries as M.

Objects carry a 2-bit saturating frequency counter incremented on hits.
On eviction from S, objects requested more than once move to M; the
rest are evicted and remembered in G.  A miss found in G is admitted
directly into M.
"""

from __future__ import annotations

from repro.core.base import EvictionPolicy, Key
from repro.core.ghost import GhostQueue
from repro.utils.linkedlist import KeyedList

_MAX_FREQ = 3


class S3FIFO(EvictionPolicy):
    """The S3-FIFO eviction algorithm.

    Parameters mirror the original paper's defaults: a 10 % small
    queue, frequency saturating at 3, move-to-main threshold of "more
    than one access", and a ghost sized to the main queue.
    """

    name = "S3-FIFO"

    def __init__(
        self,
        capacity: int,
        small_fraction: float = 0.1,
        ghost_factor: float = 1.0,
    ) -> None:
        super().__init__(capacity)
        if capacity < 2:
            raise ValueError("S3FIFO needs capacity >= 2")
        if not 0.0 < small_fraction < 1.0:
            raise ValueError(
                f"small_fraction must be in (0, 1), got {small_fraction}")
        self.small_capacity = max(1, round(capacity * small_fraction))
        self.main_capacity = capacity - self.small_capacity
        if self.main_capacity < 1:
            self.main_capacity = 1
            self.small_capacity = capacity - 1
        self._small: KeyedList[Key] = KeyedList()
        self._main: KeyedList[Key] = KeyedList()
        self.ghost = GhostQueue(round(self.main_capacity * ghost_factor))

    # ------------------------------------------------------------------
    def request(self, key: Key) -> bool:
        node = self._small.get(key)
        if node is None:
            node = self._main.get(key)
        if node is not None:
            if node.freq < _MAX_FREQ:
                node.freq += 1
            self._record(True)
            self._notify_hit(key)
            return True

        self._record(False)
        if self.ghost.remove(key):
            self._notify_ghost_hit(key)
            self._insert_main(key)
        else:
            self._insert_small(key)
        self._notify_admit(key)
        return False

    # ------------------------------------------------------------------
    def _insert_small(self, key: Key) -> None:
        while len(self._small) >= self.small_capacity:
            self._evict_from_small()
        self._small.push_head(key)

    def _insert_main(self, key: Key) -> None:
        while len(self._main) >= self.main_capacity:
            self._evict_from_main()
        self._main.push_head(key)

    def _evict_from_small(self) -> None:
        """Pop S's tail: graduate hot objects to M, ghost the rest."""
        node = self._small.pop_tail()
        if node.freq > 1:
            node.freq = 0
            while len(self._main) >= self.main_capacity:
                self._evict_from_main()
            self._main.push_head_node(node)
            self._promoted(key=node.key)
        else:
            self.ghost.add(node.key)
            self._notify_evict(node.key)

    def _evict_from_main(self) -> None:
        """Pop M's tail with lazy promotion: reinsert while freq > 0."""
        while True:
            node = self._main.pop_tail()
            if node.freq > 0:
                node.freq -= 1
                self._main.push_head_node(node)
                self._promoted(key=node.key)
            else:
                self._notify_evict(node.key)
                return

    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._small or key in self._main

    def __len__(self) -> int:
        return len(self._small) + len(self._main)

    def in_small(self, key: Key) -> bool:
        """Whether *key* is in the small (probationary) FIFO."""
        return key in self._small

    def in_main(self, key: Key) -> bool:
        """Whether *key* is in the main FIFO."""
        return key in self._main


__all__ = ["S3FIFO"]
