"""Alternative Lazy Promotion techniques (paper §5).

The paper's strict definition of Lazy Promotion is "promotion at
eviction time" (reinsertion), but §5 lists several production
techniques that likewise cut promotion traffic while retaining popular
objects:

* **periodic promotion** (FrozenHot, [62]) -- promote an object on a
  hit only if it has not been promoted recently;
* **promoting old objects only** (CacheLib, [15]) -- promote on a hit
  only when the object has drifted into the old (eviction-side)
  portion of the queue;
* batched promotion and promotion with try-lock are concurrency
  techniques without a miss-ratio effect in a single-threaded
  simulator, so they are not modelled here.

Both classes below are LRU variants whose hit path usually does *no*
list manipulation -- the property that makes them fast and scalable --
and are used by the A4 ablation benchmark to compare LP techniques.
"""

from __future__ import annotations

from repro.core.base import EvictionPolicy, Key
from repro.utils.linkedlist import KeyedList


class PeriodicPromotionLRU(EvictionPolicy):
    """LRU that promotes each object at most once per ``period``.

    A hit within ``period`` requests of the object's last promotion
    only records the access; later hits promote as usual.  ``period``
    defaults to the cache capacity -- roughly "promote once per cache
    lifetime", FrozenHot's regime.
    """

    def __init__(self, capacity: int, period: int = 0) -> None:
        super().__init__(capacity)
        self.period = period if period > 0 else capacity
        self.name = "PeriodicPromotion-LRU"
        self._queue: KeyedList[Key] = KeyedList()  # head = MRU
        self._clock = 0

    def request(self, key: Key) -> bool:
        self._clock += 1
        node = self._queue.get(key)
        if node is not None:
            last_promoted = node.extra or 0
            if self._clock - last_promoted >= self.period:
                self._queue.move_to_head(key)
                node.extra = self._clock
                self._promoted(key=key)
            self._record(True)
            self._notify_hit(key)
            return True
        self._record(False)
        if len(self._queue) >= self.capacity:
            victim = self._queue.pop_tail()
            self._notify_evict(victim.key)
        node = self._queue.push_head(key)
        node.extra = self._clock
        self._notify_admit(key)
        return False

    def __contains__(self, key: Key) -> bool:
        return key in self._queue

    def __len__(self) -> int:
        return len(self._queue)


class PromoteOldOnlyLRU(EvictionPolicy):
    """LRU that promotes only objects near the eviction end.

    A hit promotes the object only when it sits in the oldest
    ``old_fraction`` of the queue (approximated by insertion/promotion
    age, which avoids walking the list).  Hits to young objects are
    no-ops -- CacheLib's lock-avoidance heuristic.
    """

    def __init__(self, capacity: int, old_fraction: float = 0.5) -> None:
        super().__init__(capacity)
        if not 0.0 < old_fraction <= 1.0:
            raise ValueError(
                f"old_fraction must be in (0, 1], got {old_fraction}")
        self.old_fraction = old_fraction
        self.name = "PromoteOldOnly-LRU"
        self._queue: KeyedList[Key] = KeyedList()
        self._clock = 0

    def _is_old(self, node) -> bool:
        # An object is "old" when more than (1 - old_fraction) of a
        # cache-capacity worth of requests passed since it was last
        # moved to the head.
        age = self._clock - (node.extra or 0)
        return age >= (1.0 - self.old_fraction) * self.capacity

    def request(self, key: Key) -> bool:
        self._clock += 1
        node = self._queue.get(key)
        if node is not None:
            if self._is_old(node):
                self._queue.move_to_head(key)
                node.extra = self._clock
                self._promoted(key=key)
            self._record(True)
            self._notify_hit(key)
            return True
        self._record(False)
        if len(self._queue) >= self.capacity:
            victim = self._queue.pop_tail()
            self._notify_evict(victim.key)
        node = self._queue.push_head(key)
        node.extra = self._clock
        self._notify_admit(key)
        return False

    def __contains__(self, key: Key) -> bool:
        return key in self._queue

    def __len__(self) -> int:
        return len(self._queue)


__all__ = ["PeriodicPromotionLRU", "PromoteOldOnlyLRU"]
