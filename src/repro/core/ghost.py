"""Bounded metadata-only ghost queue (paper §4, Fig. 4).

A ghost queue remembers the identity -- not the data -- of recently
evicted objects.  The Quick Demotion wrapper uses a FIFO ghost sized to
as many entries as the main cache: an arriving miss whose key is found
in the ghost is judged "wrongly demoted once already" and admitted
straight into the main cache instead of the probationary queue.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterator

Key = Hashable


class GhostQueue:
    """A FIFO set of keys with bounded size.

    Re-adding an existing key refreshes its position (moves it to the
    young end), matching the behaviour of ghost queues in ARC/2Q-style
    implementations.  ``max_entries == 0`` produces a permanently empty
    ghost, useful for ablations that disable history.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Key, None]" = OrderedDict()

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Key]:
        """Iterate keys oldest -> youngest."""
        return iter(self._entries)

    def add(self, key: Key) -> None:
        """Record *key*, evicting the oldest entry when full."""
        if self.max_entries == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        while len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
        self._entries[key] = None

    def remove(self, key: Key) -> bool:
        """Forget *key*.  Returns whether it was present."""
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def clear(self) -> None:
        """Drop all entries."""
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GhostQueue {len(self)}/{self.max_entries}>"


__all__ = ["GhostQueue"]
