"""The paper's primary contribution: Lazy Promotion and Quick Demotion.

* :mod:`repro.core.base` -- the Fig. 1 cache abstraction.
* :mod:`repro.core.clock` -- LP-FIFO family (FIFO-Reinsertion, k-bit CLOCK).
* :mod:`repro.core.ghost` -- bounded metadata-only ghost queue.
* :mod:`repro.core.qd` -- the Quick Demotion wrapper (Fig. 4).
* :mod:`repro.core.qdlpfifo` -- QD-LP-FIFO, the paper's simple algorithm.
* :mod:`repro.core.s3fifo`, :mod:`repro.core.sieve` -- the follow-up
  algorithms this paper spawned, as future-work extensions.
"""

from repro.core.base import (
    CacheListener,
    CacheStats,
    EvictionEvent,
    EvictionPolicy,
    Key,
    OfflinePolicy,
)
from repro.core.adaptive_qd import AdaptiveQDLPFIFO
from repro.core.clock import FIFOReinsertion, KBitClock, two_bit_clock
from repro.core.ghost import GhostQueue
from repro.core.lp_variants import PeriodicPromotionLRU, PromoteOldOnlyLRU
from repro.core.qd import QDCache, wrap_with_qd
from repro.core.qdlpfifo import QDLPFIFO
from repro.core.s3fifo import S3FIFO
from repro.core.sieve import Sieve

__all__ = [
    "AdaptiveQDLPFIFO",
    "CacheListener",
    "CacheStats",
    "EvictionEvent",
    "EvictionPolicy",
    "Key",
    "OfflinePolicy",
    "FIFOReinsertion",
    "KBitClock",
    "two_bit_clock",
    "GhostQueue",
    "PeriodicPromotionLRU",
    "PromoteOldOnlyLRU",
    "QDCache",
    "wrap_with_qd",
    "QDLPFIFO",
    "S3FIFO",
    "Sieve",
]
