"""Quick Demotion wrapper (paper §4, Fig. 4).

Cache workloads are Zipf-distributed: most objects are unpopular, and
letting every new object traverse the whole cache before eviction wastes
space that popular objects could use.  *Quick Demotion* evicts most new
objects quickly by inserting misses into a small **probationary FIFO**
(10 % of the cache space by default).  Objects not requested again
before reaching the probationary queue's tail are evicted early and
remembered in a metadata-only **ghost FIFO** holding as many entries as
the main cache; objects that were requested are moved into the **main
cache**, which runs any eviction algorithm (ARC, LIRS, LHD, ... or a
2-bit CLOCK for :class:`~repro.core.qdlpfifo.QDLPFIFO`).  A miss whose
key is found in the ghost skips probation and enters the main cache
directly -- it already proved itself once.

The wrapper is itself an :class:`~repro.core.base.EvictionPolicy`, so QD
caches compose transparently with the simulator, profiler and analysis
pipeline.
"""

from __future__ import annotations

from typing import Callable

from repro.core.base import CacheListener, EvictionPolicy, Key
from repro.core.ghost import GhostQueue
from repro.utils.linkedlist import KeyedList

#: Factory building the main-cache policy from its capacity.
MainFactory = Callable[[int], EvictionPolicy]


class _EvictForwarder(CacheListener):
    """Re-emits the inner main cache's evictions as wrapper evictions.

    Admit events from the inner cache are deliberately *not* forwarded:
    the wrapper emits its own admits, and a probation -> main move must
    not look like a fresh admission (the object never left the cache).
    """

    def __init__(self, owner: "QDCache") -> None:
        self._owner = owner

    def on_evict(self, key: Key) -> None:
        self._owner._notify_evict(key)


class QDCache(EvictionPolicy):
    """Add a probationary FIFO + ghost FIFO in front of any policy.

    Parameters
    ----------
    capacity:
        Total number of objects the composite cache may hold.
    main_factory:
        Builds the main-cache policy given its capacity (90 % of the
        total by default).
    probation_fraction:
        Fraction of ``capacity`` given to the probationary FIFO.  The
        paper uses 0.1; the ablation benchmark sweeps this.
    ghost_factor:
        Ghost entries as a multiple of the main cache's capacity.  The
        paper uses 1.0 ("as many entries as the main cache").
    """

    def __init__(
        self,
        capacity: int,
        main_factory: MainFactory,
        probation_fraction: float = 0.1,
        ghost_factor: float = 1.0,
    ) -> None:
        super().__init__(capacity)
        if capacity < 2:
            raise ValueError("QDCache needs capacity >= 2 (one probation slot "
                             "plus one main slot)")
        if not 0.0 < probation_fraction < 1.0:
            raise ValueError(
                f"probation_fraction must be in (0, 1), got {probation_fraction}")
        if ghost_factor < 0.0:
            raise ValueError(f"ghost_factor must be >= 0, got {ghost_factor}")

        self.probation_capacity = max(1, round(capacity * probation_fraction))
        self.main_capacity = capacity - self.probation_capacity
        if self.main_capacity < 1:
            # Tiny caches: always keep at least one main slot.
            self.main_capacity = 1
            self.probation_capacity = capacity - 1

        self.main = main_factory(self.main_capacity)
        self.main.add_listener(_EvictForwarder(self))
        self.ghost = GhostQueue(round(self.main_capacity * ghost_factor))
        self._probation: KeyedList[Key] = KeyedList()
        self.name = f"QD-{self.main.name}"

    # ------------------------------------------------------------------
    # EvictionPolicy interface
    # ------------------------------------------------------------------
    def request(self, key: Key) -> bool:
        node = self._probation.get(key)
        if node is not None:
            # Lazy promotion inside probation: a hit only marks the
            # object; whether it graduates to the main cache is decided
            # when it reaches the probationary tail.
            node.visited = True
            self._record(True)
            self._notify_hit(key)
            return True
        if key in self.main:
            self.main.request(key)
            self._record(True)
            self._notify_hit(key)
            return True

        self._record(False)
        if self.ghost.remove(key):
            # Seen (and demoted) before: admit straight into the main
            # cache -- the quick-demotion filter was wrong about it once.
            self._notify_ghost_hit(key)
            self.main.request(key)
            self._notify_admit(key)
            return False

        if len(self._probation) >= self.probation_capacity:
            self._demote_one()
        self._probation.push_head(key)
        self._notify_admit(key)
        return False

    def _demote_one(self) -> None:
        """Evict one object from the probationary FIFO's tail.

        Accessed-since-insertion objects graduate to the main cache (no
        admit event: they never left the composite cache); untouched
        objects are evicted for good and remembered in the ghost.
        """
        node = self._probation.pop_tail()
        if node.visited:
            self.main.request(node.key)
            self._promoted(key=node.key)
        else:
            self.ghost.add(node.key)
            self._notify_evict(node.key)

    def __contains__(self, key: Key) -> bool:
        return key in self._probation or key in self.main

    def __len__(self) -> int:
        return len(self._probation) + len(self.main)

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and examples)
    # ------------------------------------------------------------------
    @property
    def promotion_count(self) -> int:
        """Wrapper reorderings plus the main cache's own."""
        return self.stats.promotions + self.main.promotion_count

    @property
    def probation_keys(self):
        """Keys currently in the probationary FIFO, newest first."""
        return list(self._probation.keys())

    def in_probation(self, key: Key) -> bool:
        """Whether *key* currently sits in the probationary FIFO."""
        return key in self._probation

    def in_main(self, key: Key) -> bool:
        """Whether *key* currently sits in the main cache."""
        return key in self.main


def wrap_with_qd(
    main_factory: MainFactory,
    probation_fraction: float = 0.1,
    ghost_factor: float = 1.0,
) -> MainFactory:
    """Lift a policy factory into its QD-enhanced counterpart.

    >>> from repro.policies.arc import ARC
    >>> qd_arc = wrap_with_qd(ARC)  # doctest: +SKIP
    >>> cache = qd_arc(1000)        # doctest: +SKIP
    """

    def factory(capacity: int) -> QDCache:
        return QDCache(
            capacity,
            main_factory,
            probation_fraction=probation_fraction,
            ghost_factor=ghost_factor,
        )

    return factory


__all__ = ["QDCache", "wrap_with_qd", "MainFactory"]
