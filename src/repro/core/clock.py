"""Lazy Promotion on top of FIFO: the LP-FIFO family (paper §3).

Lazy Promotion performs promotion only at eviction time.  The canonical
example is **FIFO-Reinsertion** (equivalently 1-bit CLOCK or Second
Chance): a cache hit merely sets a boolean on the object -- no queue
manipulation, no locking -- and when the object reaches the eviction end
of the FIFO queue it is reinserted at the head if that boolean is set.

The paper's large-scale study shows these "weak LRUs" are in fact *more*
efficient than LRU on most block and web traces, for two reasons:

1. Lazy promotion implies quick demotion: a newly-inserted object is
   pushed toward eviction both by objects requested after it *and* by
   not-yet-promoted objects requested before it (Fig. 2e).
2. The near-insertion ordering suits workloads with popularity decay.

:class:`KBitClock` generalises the visited bit to a small saturating
counter.  The paper's **2-bit CLOCK** tracks frequency up to three and
decrements by one each time the CLOCK hand scans past, evicting objects
whose counter reached zero.  The extra bit helps on high-reuse
(social-network-like) workloads where one bit cannot separate warm from
hot objects.
"""

from __future__ import annotations

from repro.core.base import EvictionPolicy, Key
from repro.utils.linkedlist import KeyedList


class FIFOReinsertion(EvictionPolicy):
    """FIFO-Reinsertion == 1-bit CLOCK == Second Chance.

    Requests to cached objects only set the node's ``visited`` flag --
    the object is *not* moved.  At eviction time the tail object is
    examined: if visited, the flag is cleared and the object is
    reinserted at the head (the lazy promotion); otherwise it is
    evicted.

    This terminates: each reinsertion clears a flag, so after at most
    one full pass an unvisited object is found.
    """

    name = "FIFO-Reinsertion"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._queue: KeyedList[Key] = KeyedList()

    def request(self, key: Key) -> bool:
        node = self._queue.get(key)
        if node is not None:
            node.visited = True
            self._record(True)
            self._notify_hit(key)
            return True
        self._record(False)
        if len(self._queue) >= self.capacity:
            self._evict_one()
        self._queue.push_head(key)
        self._notify_admit(key)
        return False

    def _evict_one(self) -> None:
        while True:
            node = self._queue.pop_tail()
            if node.visited:
                node.visited = False
                self._queue.push_head_node(node)
                self._promoted(key=node.key)
            else:
                self._notify_evict(node.key)
                return

    def __contains__(self, key: Key) -> bool:
        return key in self._queue

    def __len__(self) -> int:
        return len(self._queue)


class KBitClock(EvictionPolicy):
    """CLOCK with a *bits*-wide saturating frequency counter.

    ``bits=1`` reproduces :class:`FIFOReinsertion` exactly (kept as a
    separate class for clarity and as the named algorithm of §3).
    ``bits=2`` is the paper's 2-bit CLOCK: frequency saturates at 3, the
    hand decrements on scan, and zero-frequency objects are evicted.

    An object's counter starts at zero on insertion; each hit increments
    it (saturating); each hand pass over a nonzero object decrements it
    and rotates the object back to the head.
    """

    def __init__(self, capacity: int, bits: int = 2) -> None:
        super().__init__(capacity)
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        self.bits = bits
        self.max_freq = (1 << bits) - 1
        self.name = f"{bits}-bit-CLOCK"
        self._queue: KeyedList[Key] = KeyedList()

    def request(self, key: Key) -> bool:
        node = self._queue.get(key)
        if node is not None:
            if node.freq < self.max_freq:
                node.freq += 1
            self._record(True)
            self._notify_hit(key)
            return True
        self._record(False)
        if len(self._queue) >= self.capacity:
            self._evict_one()
        self._queue.push_head(key)
        self._notify_admit(key)
        return False

    def _evict_one(self) -> None:
        while True:
            node = self._queue.pop_tail()
            if node.freq > 0:
                node.freq -= 1
                self._queue.push_head_node(node)
                self._promoted(key=node.key)
            else:
                self._notify_evict(node.key)
                return

    def resize(self, new_capacity: int) -> None:
        """Change the capacity at runtime (evicting if shrinking).

        Used by the adaptive QD wrapper, which moves byte/slot budget
        between the probationary queue and the main CLOCK online.
        """
        if new_capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {new_capacity}")
        self.capacity = int(new_capacity)
        while len(self._queue) > self.capacity:
            self._evict_one()

    def __contains__(self, key: Key) -> bool:
        return key in self._queue

    def __len__(self) -> int:
        return len(self._queue)


def two_bit_clock(capacity: int) -> KBitClock:
    """Factory for the paper's 2-bit CLOCK configuration."""
    return KBitClock(capacity, bits=2)


__all__ = ["FIFOReinsertion", "KBitClock", "two_bit_clock"]
