"""An intrusive doubly-linked list keyed by hashable keys.

Several eviction algorithms (SIEVE, LIRS, MQ) need a queue supporting
O(1) removal of arbitrary elements *and* stable node identity so that a
"hand" pointer can survive unrelated insertions and removals --
something neither :class:`collections.deque` nor
:class:`collections.OrderedDict` provides directly.

The list orders nodes from *head* (most recently inserted, for queue
semantics) to *tail* (oldest).  A companion dict maps keys to nodes for
O(1) lookup.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterator, Optional, TypeVar

K = TypeVar("K", bound=Hashable)


class Node(Generic[K]):
    """A linked-list node carrying a key and generic metadata slots."""

    __slots__ = ("key", "prev", "next", "visited", "freq", "extra")

    def __init__(self, key: K) -> None:
        self.key = key
        self.prev: Optional["Node[K]"] = None
        self.next: Optional["Node[K]"] = None
        # Metadata commonly needed by CLOCK-family algorithms.  Keeping
        # them on the node avoids a parallel dict and halves lookups.
        self.visited: bool = False
        self.freq: int = 0
        self.extra: object = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Node {self.key!r} visited={self.visited} freq={self.freq}>"


class LinkedList(Generic[K]):
    """Doubly-linked list with O(1) push/pop at both ends and removal.

    ``head`` is where new elements are pushed (``push_head``); ``tail``
    is the eviction end.  Iteration runs head -> tail.
    """

    def __init__(self) -> None:
        self.head: Optional[Node[K]] = None
        self.tail: Optional[Node[K]] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Node[K]]:
        node = self.head
        while node is not None:
            # Capture next before yielding so callers may remove the
            # yielded node safely.
            nxt = node.next
            yield node
            node = nxt

    def push_head(self, node: Node[K]) -> Node[K]:
        """Insert *node* at the head and return it."""
        node.prev = None
        node.next = self.head
        if self.head is not None:
            self.head.prev = node
        self.head = node
        if self.tail is None:
            self.tail = node
        self._size += 1
        return node

    def push_tail(self, node: Node[K]) -> Node[K]:
        """Insert *node* at the tail and return it."""
        node.next = None
        node.prev = self.tail
        if self.tail is not None:
            self.tail.next = node
        self.tail = node
        if self.head is None:
            self.head = node
        self._size += 1
        return node

    def remove(self, node: Node[K]) -> Node[K]:
        """Unlink *node* from the list and return it."""
        prev, nxt = node.prev, node.next
        if prev is not None:
            prev.next = nxt
        else:
            self.head = nxt
        if nxt is not None:
            nxt.prev = prev
        else:
            self.tail = prev
        node.prev = node.next = None
        self._size -= 1
        return node

    def pop_tail(self) -> Node[K]:
        """Remove and return the tail node.

        Raises ``IndexError`` when the list is empty.
        """
        if self.tail is None:
            raise IndexError("pop from empty LinkedList")
        return self.remove(self.tail)

    def pop_head(self) -> Node[K]:
        """Remove and return the head node.

        Raises ``IndexError`` when the list is empty.
        """
        if self.head is None:
            raise IndexError("pop from empty LinkedList")
        return self.remove(self.head)

    def move_to_head(self, node: Node[K]) -> None:
        """Relocate *node* to the head (most-recent end)."""
        if self.head is node:
            return
        self.remove(node)
        self.push_head(node)

    def keys(self) -> Iterator[K]:
        """Iterate keys head -> tail."""
        for node in self:
            yield node.key


class KeyedList(Generic[K]):
    """A :class:`LinkedList` plus a key -> node index.

    This is the workhorse container for queue-structured policies: O(1)
    membership, O(1) arbitrary removal, O(1) push/pop at both ends.
    """

    def __init__(self) -> None:
        self.list: LinkedList[K] = LinkedList()
        self.index: Dict[K, Node[K]] = {}

    def __len__(self) -> int:
        return len(self.list)

    def __contains__(self, key: K) -> bool:
        return key in self.index

    def __bool__(self) -> bool:
        return bool(self.list)

    def __iter__(self) -> Iterator[Node[K]]:
        return iter(self.list)

    def get(self, key: K) -> Optional[Node[K]]:
        """Return the node for *key*, or None."""
        return self.index.get(key)

    def node(self, key: K) -> Node[K]:
        """Return the node for *key*; raises ``KeyError`` if absent."""
        return self.index[key]

    def push_head(self, key: K) -> Node[K]:
        """Create a node for *key* and insert it at the head."""
        if key in self.index:
            raise KeyError(f"duplicate key {key!r}")
        node = Node(key)
        self.index[key] = node
        return self.list.push_head(node)

    def push_tail(self, key: K) -> Node[K]:
        """Create a node for *key* and insert it at the tail."""
        if key in self.index:
            raise KeyError(f"duplicate key {key!r}")
        node = Node(key)
        self.index[key] = node
        return self.list.push_tail(node)

    def push_head_node(self, node: Node[K]) -> Node[K]:
        """Insert an existing (detached) *node* at the head."""
        if node.key in self.index:
            raise KeyError(f"duplicate key {node.key!r}")
        self.index[node.key] = node
        return self.list.push_head(node)

    def remove(self, key: K) -> Node[K]:
        """Remove *key*'s node; raises ``KeyError`` if absent."""
        node = self.index.pop(key)
        return self.list.remove(node)

    def remove_node(self, node: Node[K]) -> Node[K]:
        """Remove an in-list *node* by identity."""
        del self.index[node.key]
        return self.list.remove(node)

    def pop_tail(self) -> Node[K]:
        """Remove and return the tail node; ``IndexError`` when empty."""
        node = self.list.pop_tail()
        del self.index[node.key]
        return node

    def pop_head(self) -> Node[K]:
        """Remove and return the head node; ``IndexError`` when empty."""
        node = self.list.pop_head()
        del self.index[node.key]
        return node

    def move_to_head(self, key: K) -> Node[K]:
        """Move *key*'s node to the head; raises ``KeyError`` if absent."""
        node = self.index[key]
        self.list.move_to_head(node)
        return node

    @property
    def head(self) -> Optional[Node[K]]:
        """The head (most recently inserted) node, or None."""
        return self.list.head

    @property
    def tail(self) -> Optional[Node[K]]:
        """The tail (oldest) node, or None."""
        return self.list.tail

    def keys(self) -> Iterator[K]:
        """Iterate keys head -> tail."""
        return self.list.keys()


__all__ = ["Node", "LinkedList", "KeyedList"]
