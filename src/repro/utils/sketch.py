"""Count-Min Sketch with conservative 4-bit counters and aging.

TinyLFU-style admission (paper §5: "admission algorithms ... can be
viewed as a form of QD") needs an approximate frequency oracle over
*all* recently-seen keys, resident or not.  The standard tool is a
Count-Min Sketch with small saturating counters and periodic halving
("aging"), which keeps the frequency estimates fresh under workload
drift at O(1) memory per cache slot.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

Key = Hashable

#: 4-bit counters saturate at 15, as in TinyLFU/Caffeine.
_MAX_COUNT = 15

#: Large odd multipliers for the per-row hash mix.
_ROW_SEEDS = (0x9E3779B1, 0x85EBCA77, 0xC2B2AE3D, 0x27D4EB2F,
              0x165667B1, 0xD3A2646D)


class CountMinSketch:
    """Approximate frequency counting for cache admission.

    Parameters
    ----------
    width:
        Counters per row; rounded up to a power of two.  TinyLFU sizes
        this to the cache capacity.
    depth:
        Number of hash rows (4 in the original).
    sample_size:
        Total increments before every counter is halved (the aging
        window; 10x the cache size in the original paper).
    """

    def __init__(self, width: int, depth: int = 4,
                 sample_size: int = 0) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if not 1 <= depth <= len(_ROW_SEEDS):
            raise ValueError(
                f"depth must be in 1..{len(_ROW_SEEDS)}, got {depth}")
        self.width = 1 << (width - 1).bit_length()  # next power of two
        self.depth = depth
        self.sample_size = sample_size if sample_size > 0 else 10 * width
        self._mask = self.width - 1
        self._table = np.zeros((depth, self.width), dtype=np.uint8)
        self._increments = 0
        self.ages = 0  # number of halvings so far (exposed for tests)

    def _indexes(self, key: Key):
        base = hash(key)
        for row in range(self.depth):
            yield row, (base * _ROW_SEEDS[row] >> 7) & self._mask

    def increment(self, key: Key) -> None:
        """Count one occurrence of *key* (conservative update)."""
        current = self.estimate(key)
        if current < _MAX_COUNT:
            for row, index in self._indexes(key):
                if self._table[row, index] == current:
                    self._table[row, index] = current + 1
        self._increments += 1
        if self._increments >= self.sample_size:
            self._age()

    def estimate(self, key: Key) -> int:
        """The (over-)estimated count of *key*."""
        return min(int(self._table[row, index])
                   for row, index in self._indexes(key))

    def _age(self) -> None:
        """Halve every counter: old popularity decays geometrically."""
        self._table >>= 1
        self._increments //= 2
        self.ages += 1

    def clear(self) -> None:
        """Zero the sketch."""
        self._table.fill(0)
        self._increments = 0
        self.ages = 0


class Doorkeeper:
    """A small Bloom filter in front of the sketch (TinyLFU §"doorkeeper").

    One-hit wonders die here without ever touching the sketch: a key's
    first occurrence only sets the filter; the sketch is incremented
    from the second occurrence on.  Reset together with the sketch's
    aging window.
    """

    def __init__(self, capacity: int, hashes: int = 3) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        # ~8 bits per expected key keeps false positives ~2-3%.
        self._bits = np.zeros(
            max(64, 1 << (8 * capacity - 1).bit_length()), dtype=bool)
        self._mask = len(self._bits) - 1
        self.hashes = hashes

    def _indexes(self, key: Key):
        base = hash(key)
        for row in range(self.hashes):
            yield (base * _ROW_SEEDS[row] >> 11) & self._mask

    def put(self, key: Key) -> bool:
        """Record *key*; returns whether it was (probably) seen before."""
        seen = True
        for index in self._indexes(key):
            if not self._bits[index]:
                self._bits[index] = True
                seen = False
        return seen

    def __contains__(self, key: Key) -> bool:
        return all(self._bits[index] for index in self._indexes(key))

    def clear(self) -> None:
        """Forget everything."""
        self._bits.fill(False)


__all__ = ["CountMinSketch", "Doorkeeper"]
