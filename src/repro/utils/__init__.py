"""Internal utility data structures shared across policies."""

from repro.utils.linkedlist import KeyedList, LinkedList, Node

__all__ = ["KeyedList", "LinkedList", "Node"]
