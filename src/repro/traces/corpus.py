"""The synthetic trace corpus standing in for the paper's Table 1.

The paper evaluates on 5307 production traces from 10 dataset
collections (MSR, FIU, CloudPhysics, a major CDN, Tencent Photo, Wiki
CDN, Tencent CBS, Alibaba, Twitter, and a social network).  Those
traces are proprietary or terabyte-scale, so this module builds a
deterministic synthetic corpus with one *family* per collection, each
family's generator recipe calibrated to the paper's qualitative
description of that workload class:

* **block** families (MSR, FIU, CloudPhysics, TencentCBS, Alibaba):
  Zipf cores diluted with scans and loops, working-set shifts, and
  strong temporal locality -- the §4 "scan and loop access patterns in
  the block cache workloads".
* **web** families (CDN, TencentPhoto, WikiCDN): popularity decay,
  short-lived data, and one-hit wonders -- the §4 "dynamic and
  short-lived data ... versioning in object names".
* **KV** families (Twitter, SocialNetwork, grouped with web as in the
  paper): high skew and very high reuse; the social-network family has
  "most objects accessed more than once" (§3, footnote 3), which is
  what makes 2-bit CLOCK beat 1-bit there.

Every trace is reproducible from the corpus seed.  ``scale`` shrinks or
grows all traces proportionally so tests, benches and full runs share
one code path.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.traces import synthetic as syn
from repro.traces.trace import BLOCK, WEB, Trace

#: requests in a scale-1.0 trace, before per-trace jitter
_BASE_REQUESTS = 40_000

Builder = Callable[[np.random.Generator, float], Tuple[np.ndarray, Dict]]


def _jitter(rng: np.random.Generator, lo: float = 0.75, hi: float = 1.3) -> float:
    return float(rng.uniform(lo, hi))


# ----------------------------------------------------------------------
# Family recipes.  Each takes (rng, scale) and returns (keys, params).
# ----------------------------------------------------------------------

def _msr(rng: np.random.Generator, scale: float) -> Tuple[np.ndarray, Dict]:
    """MSR Cambridge-like: clustered Zipf core + short-lived blocks +
    a loop and scans.

    Block traces are recorded *after* the page cache, which strips the
    shortest-range reuse but leaves correlated bursts, one-shot scans
    and occasional loops.
    """
    n_req = int(_BASE_REQUESTS * scale * _jitter(rng))
    n_obj = max(400, int(n_req / rng.uniform(9.0, 14.0)))
    alpha = rng.uniform(0.7, 0.95)
    repeat = rng.uniform(0.4, 0.55)
    window = int(rng.uniform(150, 350))
    loop_len = max(100, int(n_obj * rng.uniform(0.3, 0.6)))
    core = syn.clustered_zipf_trace(
        n_obj, int(n_req * 0.55), alpha, rng, repeat, window)
    dead = syn.short_lived_trace(int(n_req * 0.15), rng,
                                 mean_accesses=rng.uniform(1.2, 1.6),
                                 window=int(rng.uniform(40, 80)),
                                 base=n_obj + n_req)
    loop = syn.loop_trace(loop_len, max(1, int(n_req * 0.1) // loop_len),
                          base=n_obj + 3 * n_req)
    scan = syn.scan_trace(int(n_req * 0.2), base=n_obj + 5 * n_req)
    keys = syn.blend([core, dead, loop, scan], [0.55, 0.15, 0.1, 0.2], rng)
    return keys, {"alpha": alpha, "repeat": repeat, "window": window,
                  "loop_len": loop_len}


def _fiu(rng: np.random.Generator, scale: float) -> Tuple[np.ndarray, Dict]:
    """FIU-like: strong temporal locality plus short-lived writes."""
    n_req = int(_BASE_REQUESTS * scale * _jitter(rng))
    n_obj = max(400, int(n_req / rng.uniform(9.0, 14.0)))
    alpha = rng.uniform(0.8, 1.0)
    core = syn.temporal_locality_trace(n_obj, int(n_req * 0.45), alpha, rng)
    clustered = syn.clustered_zipf_trace(
        max(200, n_obj // 2), int(n_req * 0.25), alpha, rng,
        repeat_prob=rng.uniform(0.4, 0.55), window=int(rng.uniform(150, 300)),
        base=n_obj + n_req)
    dead = syn.short_lived_trace(int(n_req * 0.2), rng,
                                 mean_accesses=rng.uniform(1.2, 1.6),
                                 window=int(rng.uniform(40, 80)),
                                 base=n_obj + 3 * n_req)
    scan = syn.scan_trace(int(n_req * 0.1), base=n_obj + 5 * n_req)
    keys = syn.blend([core, clustered, dead, scan],
                     [0.45, 0.25, 0.2, 0.1], rng)
    return keys, {"alpha": alpha}


def _cloudphysics(rng: np.random.Generator, scale: float
                  ) -> Tuple[np.ndarray, Dict]:
    """CloudPhysics-like: widely varying skew, bursty reuse, scans."""
    n_req = int(_BASE_REQUESTS * scale * _jitter(rng))
    n_obj = max(400, int(n_req / rng.uniform(8.0, 13.0)))
    alpha = rng.uniform(0.6, 1.2)
    core = syn.clustered_zipf_trace(
        n_obj, int(n_req * 0.6), alpha, rng,
        repeat_prob=rng.uniform(0.35, 0.55),
        window=int(rng.uniform(150, 400)))
    dead = syn.short_lived_trace(int(n_req * 0.2), rng,
                                 mean_accesses=rng.uniform(1.2, 1.6),
                                 window=int(rng.uniform(40, 80)),
                                 base=n_obj + n_req)
    scan = syn.scan_trace(int(n_req * 0.2), base=n_obj + 3 * n_req)
    keys = syn.blend([core, dead, scan], [0.6, 0.2, 0.2], rng)
    return keys, {"alpha": alpha}


def _tencent_cbs(rng: np.random.Generator, scale: float
                 ) -> Tuple[np.ndarray, Dict]:
    """Tencent CBS-like: low-reuse cloud block storage with loops."""
    n_req = int(_BASE_REQUESTS * scale * _jitter(rng))
    n_obj = max(600, int(n_req / rng.uniform(5.0, 8.0)))
    alpha = rng.uniform(0.6, 0.85)
    loop_len = max(200, int(n_obj * rng.uniform(0.4, 0.8)))
    core = syn.clustered_zipf_trace(
        n_obj, int(n_req * 0.55), alpha, rng,
        repeat_prob=rng.uniform(0.35, 0.5),
        window=int(rng.uniform(150, 350)))
    dead = syn.short_lived_trace(int(n_req * 0.15), rng,
                                 mean_accesses=rng.uniform(1.2, 1.5),
                                 window=int(rng.uniform(40, 80)),
                                 base=n_obj + n_req)
    loop = syn.loop_trace(loop_len, max(1, int(n_req * 0.1) // loop_len),
                          base=n_obj + 3 * n_req)
    scan = syn.scan_trace(int(n_req * 0.2), base=n_obj + 5 * n_req)
    keys = syn.blend([core, dead, loop, scan], [0.55, 0.15, 0.1, 0.2], rng)
    return keys, {"alpha": alpha, "loop_len": loop_len}


def _alibaba(rng: np.random.Generator, scale: float
             ) -> Tuple[np.ndarray, Dict]:
    """Alibaba-like: bursty Zipf core with gentle working-set drift.

    The paper notes Denning-style abrupt phase changes are *not*
    observed in block/web cache workloads, so shifts are gentle (high
    overlap) and a minority of the traffic.
    """
    n_req = int(_BASE_REQUESTS * scale * _jitter(rng))
    phases = int(rng.integers(3, 6))
    alpha = rng.uniform(0.75, 1.0)
    overlap = rng.uniform(0.7, 0.9)
    n_obj = max(400, int(n_req / rng.uniform(8.0, 13.0)))
    core = syn.clustered_zipf_trace(
        n_obj, int(n_req * 0.55), alpha, rng,
        repeat_prob=rng.uniform(0.4, 0.55),
        window=int(rng.uniform(150, 350)))
    dead = syn.short_lived_trace(int(n_req * 0.15), rng,
                                 mean_accesses=rng.uniform(1.2, 1.6),
                                 window=int(rng.uniform(40, 80)),
                                 base=n_obj + n_req)
    per_phase_obj = max(300, n_obj // 2)
    shifts = syn.working_set_shift_trace(
        per_phase_obj, int(n_req * 0.15) // phases, phases, alpha,
        overlap, rng, base=n_obj + 3 * n_req)
    scan = syn.scan_trace(int(n_req * 0.15), base=n_obj + 6 * n_req)
    keys = syn.blend([core, dead, shifts, scan],
                     [0.55, 0.15, 0.15, 0.15], rng)
    return keys, {"alpha": alpha, "phases": phases, "overlap": overlap}


def _cdn(rng: np.random.Generator, scale: float) -> Tuple[np.ndarray, Dict]:
    """Major-CDN-like: decaying core + short-lived/versioned objects +
    a heavy stream of one-hit wonders."""
    n_req = int(_BASE_REQUESTS * scale * _jitter(rng))
    n_obj = max(400, int(n_req / rng.uniform(8.0, 12.0)))
    alpha = rng.uniform(0.8, 1.1)
    core = syn.clustered_zipf_trace(
        n_obj, int(n_req * 0.35), alpha, rng,
        repeat_prob=rng.uniform(0.35, 0.5),
        window=int(rng.uniform(200, 400)))
    decay = syn.popularity_decay_trace(
        int(n_req * 0.25), rng.uniform(0.03, 0.08), alpha, rng,
        base=n_obj + n_req)
    dead = syn.short_lived_trace(int(n_req * 0.25), rng,
                                 mean_accesses=rng.uniform(1.2, 1.6),
                                 window=int(rng.uniform(40, 80)),
                                 base=n_obj + 3 * n_req)
    onehit = syn.scan_trace(int(n_req * 0.15), base=n_obj + 5 * n_req)
    keys = syn.blend([core, decay, dead, onehit],
                     [0.35, 0.25, 0.25, 0.15], rng)
    return keys, {"alpha": alpha}


def _tencent_photo(rng: np.random.Generator, scale: float
                   ) -> Tuple[np.ndarray, Dict]:
    """Tencent-Photo-like: decaying popular core + long-tail photos
    fetched once or twice."""
    n_req = int(_BASE_REQUESTS * scale * _jitter(rng))
    alpha = rng.uniform(0.8, 1.0)
    rate = rng.uniform(0.05, 0.12)
    decay = syn.popularity_decay_trace(int(n_req * 0.5), rate, alpha, rng)
    dead = syn.short_lived_trace(int(n_req * 0.25), rng,
                                 mean_accesses=rng.uniform(1.2, 1.5),
                                 window=int(rng.uniform(40, 80)),
                                 base=2 * n_req)
    onehit = syn.scan_trace(int(n_req * 0.25), base=4 * n_req)
    keys = syn.blend([decay, dead, onehit], [0.5, 0.25, 0.25], rng)
    return keys, {"alpha": alpha, "new_object_rate": rate}


def _wiki(rng: np.random.Generator, scale: float) -> Tuple[np.ndarray, Dict]:
    """Wiki-CDN-like: very skewed bursty core with one-hit wonders."""
    n_req = int(_BASE_REQUESTS * scale * _jitter(rng))
    n_obj = max(400, int(n_req / rng.uniform(9.0, 14.0)))
    alpha = rng.uniform(1.0, 1.2)
    core = syn.clustered_zipf_trace(
        n_obj, int(n_req * 0.6), alpha, rng,
        repeat_prob=rng.uniform(0.35, 0.5),
        window=int(rng.uniform(200, 400)))
    dead = syn.short_lived_trace(int(n_req * 0.2), rng,
                                 mean_accesses=rng.uniform(1.2, 1.6),
                                 window=int(rng.uniform(40, 80)),
                                 base=n_obj + n_req)
    onehit = syn.scan_trace(int(n_req * 0.2), base=n_obj + 3 * n_req)
    keys = syn.blend([core, dead, onehit], [0.6, 0.2, 0.2], rng)
    return keys, {"alpha": alpha}


def _twitter(rng: np.random.Generator, scale: float
             ) -> Tuple[np.ndarray, Dict]:
    """Twitter-KV-like: skewed, strong temporal locality, and a tail
    of short-TTL / versioned keys (paper §4)."""
    n_req = int(_BASE_REQUESTS * scale * _jitter(rng))
    n_obj = max(500, int(n_req / rng.uniform(8.0, 14.0)))
    alpha = rng.uniform(1.0, 1.2)
    core = syn.temporal_locality_trace(n_obj, int(n_req * 0.5), alpha, rng)
    clustered = syn.clustered_zipf_trace(
        max(200, n_obj // 2), int(n_req * 0.2), alpha, rng,
        repeat_prob=rng.uniform(0.4, 0.55), window=int(rng.uniform(150, 300)),
        base=n_obj + n_req)
    dead = syn.short_lived_trace(int(n_req * 0.15), rng,
                                 mean_accesses=rng.uniform(1.2, 1.6),
                                 window=int(rng.uniform(40, 80)),
                                 base=n_obj + 3 * n_req)
    onehit = syn.scan_trace(int(n_req * 0.15), base=n_obj + 5 * n_req)
    keys = syn.blend([core, clustered, dead, onehit],
                     [0.5, 0.2, 0.15, 0.15], rng)
    return keys, {"alpha": alpha}


def _socialnet(rng: np.random.Generator, scale: float
               ) -> Tuple[np.ndarray, Dict]:
    """Social-network-KV-like: first-layer cache, nearly every object
    accessed more than once (paper §3 footnote 3)."""
    n_req = int(_BASE_REQUESTS * scale * _jitter(rng))
    n_obj = max(300, int(n_req / rng.uniform(14.0, 22.0)))
    alpha = rng.uniform(1.15, 1.35)
    keys = syn.clustered_zipf_trace(
        n_obj, n_req, alpha, rng,
        repeat_prob=rng.uniform(0.25, 0.4),
        window=int(rng.uniform(200, 400)))
    return keys, {"alpha": alpha}


@dataclass(frozen=True)
class DatasetFamily:
    """One Table 1 dataset collection."""

    name: str
    group: str          # block | web, the paper's Fig. 2/5 split
    cache_type: str     # block | object | KV, the Table 1 column
    approx_year: int
    default_traces: int
    builder: Builder


FAMILIES: List[DatasetFamily] = [
    DatasetFamily("msr", BLOCK, "block", 2007, 8, _msr),
    DatasetFamily("fiu", BLOCK, "block", 2008, 6, _fiu),
    DatasetFamily("cloudphysics", BLOCK, "block", 2015, 12, _cloudphysics),
    DatasetFamily("cdn", WEB, "object", 2018, 14, _cdn),
    DatasetFamily("tencent_photo", WEB, "object", 2018, 6, _tencent_photo),
    DatasetFamily("wiki", WEB, "object", 2019, 6, _wiki),
    DatasetFamily("tencent_cbs", BLOCK, "block", 2020, 16, _tencent_cbs),
    DatasetFamily("alibaba", BLOCK, "block", 2020, 12, _alibaba),
    DatasetFamily("twitter", WEB, "KV", 2020, 10, _twitter),
    DatasetFamily("socialnet", WEB, "KV", 2020, 10, _socialnet),
]

FAMILY_BY_NAME: Dict[str, DatasetFamily] = {f.name: f for f in FAMILIES}


def build_trace(family: DatasetFamily, index: int, scale: float,
                seed: int) -> Trace:
    """Build the *index*-th trace of *family* deterministically."""
    # Independent stream per (seed, family, index): reordering or
    # subsetting the corpus never changes individual traces.  CRC32 is
    # a stable string hash (Python's hash() is salted per process).
    family_tag = zlib.crc32(family.name.encode("utf-8"))
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, family_tag, index]))
    keys, params = family.builder(rng, scale)
    return Trace(
        name=f"{family.name}-{index:03d}",
        keys=keys,
        family=family.name,
        group=family.group,
        params=params,
    )


def build_corpus(
    scale: float = 1.0,
    traces_per_family: Optional[int] = None,
    seed: int = 42,
    families: Optional[List[str]] = None,
) -> List[Trace]:
    """Build the full synthetic corpus.

    ``traces_per_family`` overrides each family's default count (the
    benches use small counts; the full study uses the defaults).
    ``families`` restricts to a subset by name.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    selected = FAMILIES
    if families is not None:
        unknown = [name for name in families if name not in FAMILY_BY_NAME]
        if unknown:
            raise KeyError(f"unknown families: {unknown}")
        selected = [FAMILY_BY_NAME[name] for name in families]
    corpus = []
    for family in selected:
        count = traces_per_family or family.default_traces
        for index in range(count):
            corpus.append(build_trace(family, index, scale, seed))
    return corpus


__all__ = [
    "DatasetFamily",
    "FAMILIES",
    "FAMILY_BY_NAME",
    "build_trace",
    "build_corpus",
]
