"""Trace statistics: the numbers behind Table 1.

For each trace (and aggregated per dataset family) we compute the
figures the paper's Table 1 reports -- request and object counts --
plus the reuse statistics the paper's arguments hinge on: the one-hit
-wonder ratio (objects requested exactly once, the targets of quick
demotion) and the mean object frequency (which explains why the
social-network datasets favour 2-bit over 1-bit CLOCK).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.traces.trace import Trace


@dataclass(frozen=True)
class TraceStats:
    """Descriptive statistics of one trace."""

    name: str
    family: str
    group: str
    num_requests: int
    num_objects: int
    one_hit_wonder_ratio: float
    mean_frequency: float
    max_frequency: int

    @property
    def reuse_ratio(self) -> float:
        """Fraction of objects requested more than once."""
        return 1.0 - self.one_hit_wonder_ratio


def compute_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for one trace."""
    _, counts = np.unique(trace.keys, return_counts=True)
    return TraceStats(
        name=trace.name,
        family=trace.family,
        group=trace.group,
        num_requests=trace.num_requests,
        num_objects=int(counts.size),
        one_hit_wonder_ratio=float((counts == 1).mean()),
        mean_frequency=float(counts.mean()),
        max_frequency=int(counts.max()),
    )


@dataclass(frozen=True)
class FamilyStats:
    """Table 1 row: aggregate statistics of one dataset family."""

    family: str
    group: str
    cache_type: str
    num_traces: int
    total_requests: int
    total_objects: int
    mean_one_hit_wonder_ratio: float
    mean_frequency: float


def aggregate_by_family(
    traces: Iterable[Trace],
    cache_types: Optional[Dict[str, str]] = None,
) -> List[FamilyStats]:
    """Aggregate per-trace stats into per-family Table 1 rows."""
    per_family: Dict[str, List[TraceStats]] = {}
    groups: Dict[str, str] = {}
    for trace in traces:
        stats = compute_stats(trace)
        per_family.setdefault(stats.family, []).append(stats)
        groups[stats.family] = stats.group

    rows = []
    for family, stats_list in sorted(per_family.items()):
        cache_type = (cache_types or {}).get(family, groups[family])
        rows.append(FamilyStats(
            family=family,
            group=groups[family],
            cache_type=cache_type,
            num_traces=len(stats_list),
            total_requests=sum(s.num_requests for s in stats_list),
            total_objects=sum(s.num_objects for s in stats_list),
            mean_one_hit_wonder_ratio=float(
                np.mean([s.one_hit_wonder_ratio for s in stats_list])),
            mean_frequency=float(
                np.mean([s.mean_frequency for s in stats_list])),
        ))
    return rows


def frequency_histogram(trace: Trace, bins: int = 10) -> Dict[str, int]:
    """Histogram of object access counts (log-spaced bins).

    Returns labelled bins like ``{"1": 812, "2-3": 211, ...}`` --
    useful for eyeballing whether a family matches its intended reuse
    profile.
    """
    _, counts = np.unique(trace.keys, return_counts=True)
    edges = [1, 2, 4, 8, 16, 32, 64, 128, 256][: bins]
    histogram: Dict[str, int] = {}
    for i, lo in enumerate(edges):
        hi = edges[i + 1] - 1 if i + 1 < len(edges) else None
        if hi is None:
            label, mask = f"{lo}+", counts >= lo
        elif hi == lo:
            label, mask = f"{lo}", counts == lo
        else:
            label, mask = f"{lo}-{hi}", (counts >= lo) & (counts <= hi)
        histogram[label] = int(mask.sum())
    return histogram


__all__ = [
    "TraceStats",
    "FamilyStats",
    "compute_stats",
    "aggregate_by_family",
    "frequency_histogram",
]
