"""Zipfian sampling.

Cache workloads are famously Zipf-distributed (Breslau et al., 1999;
the paper leans on this in §4): the i-th most popular of *n* objects is
requested with probability proportional to ``1 / i**alpha``.  The
sampler precomputes the CDF once and draws batches with a binary
search, which is orders of magnitude faster than ``random.choices``
for the trace sizes used here.
"""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Batch sampler over ranks ``0 .. n-1`` with skew ``alpha``.

    ``alpha = 0`` degenerates to the uniform distribution; typical
    cache workloads have ``alpha`` between 0.6 and 1.3.  Rank 0 is the
    most popular object.
    """

    def __init__(self, n: int, alpha: float, rng: np.random.Generator) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.n = n
        self.alpha = alpha
        self._rng = rng
        weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** alpha
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, count: int) -> np.ndarray:
        """Draw *count* ranks (int64 array)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        uniforms = self._rng.random(count)
        return np.searchsorted(self._cdf, uniforms, side="left").astype(np.int64)

    def pmf(self) -> np.ndarray:
        """The probability mass function over ranks."""
        pmf = np.empty(self.n)
        pmf[0] = self._cdf[0]
        pmf[1:] = np.diff(self._cdf)
        return pmf


def zipf_ranks(n: int, alpha: float, count: int, seed: int) -> np.ndarray:
    """One-shot convenience wrapper around :class:`ZipfSampler`."""
    rng = np.random.default_rng(seed)
    return ZipfSampler(n, alpha, rng).sample(count)


__all__ = ["ZipfSampler", "zipf_ranks"]
