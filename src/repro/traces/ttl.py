"""TTL (time-to-live) modelling (paper §2, §4).

The paper's cache abstraction treats TTL expiry as a user-driven
*removal*, and names "the use of short TTLs in the web cache
workloads" as a driver of short-lived data -- one of the reasons quick
demotion pays off.

For miss-ratio studies, lazy TTL expiry is equivalent to *versioning*
the key space: a request after an object's TTL elapsed can never hit,
so it behaves exactly like a request for a brand-new object, while the
stale copy lingers in the cache until evicted -- which is what a real
lazily-expiring cache does.  :func:`apply_ttl` performs that rewrite:
each key is replaced by a fresh id per TTL epoch, with logical time
measured in requests.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple, Union

import numpy as np

from repro.traces.trace import Trace


def apply_ttl(
    trace: Union[Trace, Sequence[int], np.ndarray],
    ttl: int,
    jitter: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """Rewrite a key trace under a TTL of *ttl* requests.

    Each object's lifetime is divided into epochs of length ``ttl``
    (optionally jittered per object by up to ``+-jitter`` fraction,
    modelling heterogeneous TTL assignments); requests in different
    epochs reference different versioned ids.  ``ttl <= 0`` means no
    expiry and returns the keys unchanged.
    """
    if isinstance(trace, Trace):
        keys = trace.keys
    else:
        keys = np.asarray(trace, dtype=np.int64)
    if ttl <= 0:
        return keys.copy()
    if not 0.0 <= jitter < 1.0:
        raise ValueError(f"jitter must be in [0, 1), got {jitter}")

    rng = np.random.default_rng(seed)
    ttl_of: Dict[int, int] = {}
    #: key -> (current versioned id, version birth time)
    version_of: Dict[int, Tuple[int, int]] = {}
    out = np.empty(len(keys), dtype=np.int64)
    next_id = 0
    for now, key in enumerate(keys.tolist()):
        obj_ttl = ttl_of.get(key)
        if obj_ttl is None:
            if jitter > 0.0:
                factor = 1.0 + float(rng.uniform(-jitter, jitter))
                obj_ttl = max(1, int(ttl * factor))
            else:
                obj_ttl = ttl
            ttl_of[key] = obj_ttl
        current = version_of.get(key)
        if current is None or now - current[1] >= obj_ttl:
            # First access, or the copy fetched at the version's birth
            # has expired: the cache must fetch (and version) afresh.
            current = (next_id, now)
            version_of[key] = current
            next_id += 1
        out[now] = current[0]
    return out


def effective_objects(trace: Union[Trace, Sequence[int]],
                      ttl: int) -> int:
    """Number of distinct versioned objects a TTL induces.

    With no TTL this equals the trace's unique-object count; short
    TTLs inflate it, which is the churn quick demotion absorbs.
    """
    rewritten = apply_ttl(trace, ttl)
    return int(np.unique(rewritten).size)


__all__ = ["apply_ttl", "effective_objects"]
