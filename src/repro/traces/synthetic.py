"""Composable synthetic workload generators.

These generators reproduce the access-pattern *structure* the paper's
production traces exhibit (§4): Zipf popularity, scans and loops in
block workloads, popularity decay and one-hit wonders in web
workloads, very high reuse in social-network KV workloads, and abrupt
working-set shifts.  Each generator returns a numpy int64 key array;
:func:`blend` and :func:`concatenate` compose them into full traces.

All randomness flows through explicit ``numpy.random.Generator``
instances, so corpus construction is bit-for-bit deterministic given a
seed.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.traces.zipf import ZipfSampler


def _permuted_ids(num_objects: int, base: int,
                  rng: np.random.Generator) -> np.ndarray:
    """Object ids for ranks, shuffled so popularity isn't id-ordered."""
    ids = np.arange(base, base + num_objects, dtype=np.int64)
    rng.shuffle(ids)
    return ids


def zipf_trace(
    num_objects: int,
    num_requests: int,
    alpha: float,
    rng: np.random.Generator,
    base: int = 0,
) -> np.ndarray:
    """IID Zipf requests over ``num_objects`` objects."""
    sampler = ZipfSampler(num_objects, alpha, rng)
    ranks = sampler.sample(num_requests)
    return _permuted_ids(num_objects, base, rng)[ranks]


def clustered_zipf_trace(
    num_objects: int,
    num_requests: int,
    alpha: float,
    rng: np.random.Generator,
    repeat_prob: float = 0.5,
    window: int = 250,
    base: int = 0,
) -> np.ndarray:
    """Zipf traffic with temporally clustered re-references.

    Real cache workloads are not IID: accesses to an object bunch in
    time (correlated references, the pattern 2Q was designed around).
    Each request either repeats a recent request (probability
    ``repeat_prob``, drawn uniformly from the last ``window``
    positions) or draws fresh from the Zipf core.  Clustered reuse is
    what makes a small probationary FIFO cheap: an object's follow-up
    accesses land while it is still in probation.
    """
    if not 0.0 <= repeat_prob < 1.0:
        raise ValueError(
            f"repeat_prob must be in [0, 1), got {repeat_prob}")
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    out = zipf_trace(num_objects, num_requests, alpha, rng, base=base)
    repeat = rng.random(num_requests) < repeat_prob
    offsets = rng.integers(1, window, num_requests)
    for i in range(1, num_requests):
        if repeat[i]:
            out[i] = out[i - min(offsets[i], i)]
    return out


def short_lived_trace(
    num_requests: int,
    rng: np.random.Generator,
    mean_accesses: float = 2.0,
    window: int = 300,
    base: int = 0,
) -> np.ndarray:
    """A stream of short-lived objects: a small burst, then death.

    Models the paper's "dynamic and short-lived data, versioning in
    object names, short TTLs" (§4): each object receives a geometric
    number of accesses (mean ``mean_accesses``), all within ``window``
    requests of its birth, and is never requested again.  These
    objects fool promotion-based algorithms -- a couple of correlated
    hits look like popularity -- and are exactly what quick demotion
    evicts early.
    """
    if mean_accesses < 1.0:
        raise ValueError(
            f"mean_accesses must be >= 1, got {mean_accesses}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    events = []
    position = 0
    object_id = base
    while len(events) < num_requests:
        burst = int(rng.geometric(1.0 / mean_accesses))
        offsets = rng.integers(0, window, burst)
        events.extend((position + int(off), object_id) for off in offsets)
        object_id += 1
        position += burst  # keeps event density near one per slot
    events.sort()
    return np.array([key for _, key in events[:num_requests]],
                    dtype=np.int64)


def scan_trace(num_objects: int, base: int = 0) -> np.ndarray:
    """A single sequential pass over ``num_objects`` objects.

    Scans are the classic cache-polluting pattern of block workloads:
    every object is touched exactly once, so none deserves caching.
    """
    return np.arange(base, base + num_objects, dtype=np.int64)


def loop_trace(num_objects: int, repetitions: int, base: int = 0) -> np.ndarray:
    """Cyclic repetition of a sequential scan.

    A loop of length > cache size is LRU's worst case (hit ratio 0)
    while FIFO-family and LIRS-style algorithms retain part of it.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    single = scan_trace(num_objects, base)
    return np.tile(single, repetitions)


def temporal_locality_trace(
    num_objects: int,
    num_requests: int,
    alpha: float,
    rng: np.random.Generator,
    base: int = 0,
) -> np.ndarray:
    """The LRU-stack-depth model of temporal locality.

    Each request references the object at stack depth *d*, where *d*
    is drawn Zipf-distributed, and moves it to the top.  Small depths
    dominate, producing the "recently used implies soon reused"
    pattern that favours recency-based algorithms.
    """
    sampler = ZipfSampler(num_objects, alpha, rng)
    depths = sampler.sample(num_requests)
    stack: List[int] = list(range(base, base + num_objects))
    out = np.empty(num_requests, dtype=np.int64)
    for i, depth in enumerate(depths):
        key = stack[depth]
        if depth:
            del stack[depth]
            stack.insert(0, key)
        out[i] = key
    return out


def popularity_decay_trace(
    num_requests: int,
    new_object_rate: float,
    alpha: float,
    rng: np.random.Generator,
    base: int = 0,
    initial_objects: int = 64,
) -> np.ndarray:
    """Web-style stream where newer objects are more popular.

    New objects arrive at ``new_object_rate`` per request; every
    request picks an *age rank* (0 = newest object) from a Zipf
    distribution, so an object's request probability decays as newer
    objects arrive -- the popularity-decay behaviour the paper
    conjectures makes near-insertion ordering (LP-FIFO) effective.
    """
    if not 0.0 < new_object_rate <= 1.0:
        raise ValueError(
            f"new_object_rate must be in (0, 1], got {new_object_rate}")
    # At most one arrival per request: size the CDF for the worst case.
    max_objects = initial_objects + num_requests + 1
    weights = 1.0 / np.arange(1, max_objects + 1, dtype=np.float64) ** alpha
    cdf = np.cumsum(weights)

    arrivals = rng.random(num_requests) < new_object_rate
    uniforms = rng.random(num_requests)
    out = np.empty(num_requests, dtype=np.int64)
    count = initial_objects
    for i in range(num_requests):
        if arrivals[i]:
            count += 1
        # Zipf over the current population's age ranks: invert the CDF
        # truncated to `count` entries.
        rank = int(np.searchsorted(cdf, uniforms[i] * cdf[count - 1],
                                   side="left"))
        out[i] = base + (count - 1 - rank)  # rank 0 = newest id
    return out


def one_hit_wonder_trace(
    core_objects: int,
    num_requests: int,
    alpha: float,
    ohw_fraction: float,
    rng: np.random.Generator,
    base: int = 0,
) -> np.ndarray:
    """Zipf core traffic diluted with never-reused one-hit wonders.

    CDN traces famously contain a large fraction of objects requested
    exactly once; admitting them wastes cache space, which is exactly
    what quick demotion repairs.
    """
    if not 0.0 <= ohw_fraction < 1.0:
        raise ValueError(
            f"ohw_fraction must be in [0, 1), got {ohw_fraction}")
    core = zipf_trace(core_objects, num_requests, alpha, rng, base=base)
    is_ohw = rng.random(num_requests) < ohw_fraction
    num_ohw = int(is_ohw.sum())
    fresh = np.arange(num_ohw, dtype=np.int64) + base + core_objects
    out = core
    out[is_ohw] = fresh
    return out


def working_set_shift_trace(
    objects_per_phase: int,
    requests_per_phase: int,
    num_phases: int,
    alpha: float,
    overlap: float,
    rng: np.random.Generator,
    base: int = 0,
) -> np.ndarray:
    """Phased workload whose working set shifts between phases.

    Consecutive phases share an ``overlap`` fraction of their object
    range -- Denning's "abrupt changes between phases", which the
    paper notes favour LRU's fast adaptation over CLOCK in virtual
    memory (but are rare in block/web traces).
    """
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")
    if num_phases < 1:
        raise ValueError(f"num_phases must be >= 1, got {num_phases}")
    shift = max(1, int(objects_per_phase * (1.0 - overlap)))
    parts = []
    for phase in range(num_phases):
        parts.append(zipf_trace(
            objects_per_phase,
            requests_per_phase,
            alpha,
            rng,
            base=base + phase * shift,
        ))
    return np.concatenate(parts)


def concatenate(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Join generator outputs back-to-back (phased composition)."""
    if not parts:
        raise ValueError("need at least one part")
    return np.concatenate([np.asarray(p, dtype=np.int64) for p in parts])


def blend(
    parts: Sequence[np.ndarray],
    weights: Sequence[float],
    rng: np.random.Generator,
) -> np.ndarray:
    """Probabilistically interleave several streams.

    Each output position draws its source stream with the given
    weights; every source is consumed in order.  The output length is
    the maximum achievable without exhausting any chosen source.
    """
    if len(parts) != len(weights):
        raise ValueError("parts and weights must have equal length")
    if not parts:
        raise ValueError("need at least one part")
    probs = np.asarray(weights, dtype=np.float64)
    if (probs < 0).any() or probs.sum() <= 0:
        raise ValueError("weights must be non-negative and sum > 0")
    probs = probs / probs.sum()

    total = sum(len(p) for p in parts)
    choices = rng.choice(len(parts), size=total, p=probs)
    cursors = [0] * len(parts)
    out = np.empty(total, dtype=np.int64)
    filled = 0
    for choice in choices:
        part = parts[choice]
        cursor = cursors[choice]
        if cursor >= len(part):
            break  # chosen stream exhausted: stop, keeping determinism
        out[filled] = part[cursor]
        cursors[choice] = cursor + 1
        filled += 1
    return out[:filled]


__all__ = [
    "zipf_trace",
    "clustered_zipf_trace",
    "short_lived_trace",
    "scan_trace",
    "loop_trace",
    "temporal_locality_trace",
    "popularity_decay_trace",
    "one_hit_wonder_trace",
    "working_set_shift_trace",
    "concatenate",
    "blend",
]
