"""Trace file I/O.

Two interchange formats:

* **CSV** -- one request per line: ``key[,time[,size]]`` with an
  optional header.  Human-readable, compatible with the common
  "oracleGeneral-ish" text exports of public trace repositories.
* **Packed binary** -- a tiny header (magic, version, count) followed
  by little-endian int64 keys.  ~10x smaller and ~50x faster to load
  than CSV for the million-request traces the full study uses.

Both round-trip through :class:`~repro.traces.trace.Trace` including
the family/group metadata (stored in the CSV header comment / binary
header).
"""

from __future__ import annotations

import csv
import json
import struct
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.traces.trace import BLOCK, Trace

_MAGIC = b"RPTR"
_VERSION = 1

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------

def write_csv(trace: Trace, path: PathLike) -> None:
    """Write *trace* as CSV with a ``# meta:`` JSON header comment."""
    path = Path(path)
    meta = {"name": trace.name, "family": trace.family, "group": trace.group}
    with path.open("w", newline="") as handle:
        handle.write(f"# meta: {json.dumps(meta)}\n")
        writer = csv.writer(handle)
        writer.writerow(["key"])
        for key in trace.as_list():
            writer.writerow([key])


def read_csv(path: PathLike, name: Optional[str] = None) -> Trace:
    """Read a trace from CSV.

    Accepts files with or without the ``# meta:`` comment and header
    row, and with 1-3 columns (key[,time[,size]]); only the key column
    is used, matching the paper's uniform-size setting.

    One non-numeric header row is tolerated before the data; any other
    row whose first column is not an integer raises ``ValueError``
    naming the offending line, so corrupt exports fail loudly instead
    of silently dropping requests.
    """
    path = Path(path)
    meta = {"name": name or path.stem, "family": "imported", "group": BLOCK}
    keys = []
    header_seen = False
    with path.open(newline="") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# meta:"):
                    try:
                        meta.update(json.loads(line[len("# meta:"):]))
                    except json.JSONDecodeError as exc:
                        raise ValueError(
                            f"{path}:{lineno}: malformed '# meta:' "
                            f"header: {exc}") from exc
                continue
            first = line.split(",", 1)[0].strip()
            if not first.lstrip("-").isdigit():
                if not header_seen and not keys:
                    header_seen = True  # the one allowed header row
                    continue
                raise ValueError(
                    f"{path}:{lineno}: malformed row {line!r} "
                    f"(expected an integer key in the first column)")
            keys.append(int(first))
    if not keys:
        raise ValueError(f"no requests found in {path}")
    if name is not None:
        meta["name"] = name
    return Trace(name=meta["name"], keys=np.asarray(keys, dtype=np.int64),
                 family=meta["family"], group=meta["group"])


# ----------------------------------------------------------------------
# Packed binary
# ----------------------------------------------------------------------

def write_binary(trace: Trace, path: PathLike) -> None:
    """Write *trace* in the packed binary format."""
    path = Path(path)
    meta = json.dumps({
        "name": trace.name, "family": trace.family, "group": trace.group,
    }).encode("utf-8")
    with path.open("wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<HI", _VERSION, len(meta)))
        handle.write(meta)
        handle.write(struct.pack("<Q", trace.num_requests))
        handle.write(trace.keys.astype("<i8").tobytes())


def read_binary(path: PathLike) -> Trace:
    """Read a trace written by :func:`write_binary`.

    Every length field in the header is validated against the actual
    file size *before* anything is allocated or read, so a corrupt or
    hostile header (e.g. a multi-gigabyte ``meta_len`` or ``count`` in
    a 100-byte file) raises a clear ``ValueError`` instead of
    attempting an enormous read.
    """
    path = Path(path)
    file_size = path.stat().st_size
    with path.open("rb") as handle:
        header = handle.read(10)
        if len(header) < 10:
            raise ValueError(
                f"{path} is truncated: {file_size} bytes is too short "
                f"for the 10-byte header")
        magic = header[:4]
        if magic != _MAGIC:
            raise ValueError(f"{path} is not a packed trace file "
                             f"(bad magic {magic!r})")
        version, meta_len = struct.unpack("<HI", header[4:10])
        if version != _VERSION:
            raise ValueError(f"unsupported trace version {version}")
        if meta_len > file_size - 10 - 8:
            raise ValueError(
                f"{path} has a corrupt header: metadata length "
                f"{meta_len} exceeds the {file_size}-byte file")
        try:
            meta = json.loads(handle.read(meta_len).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(
                f"{path} has corrupt metadata: {exc}") from exc
        if not isinstance(meta, dict):
            raise ValueError(
                f"{path} has corrupt metadata: expected a JSON object, "
                f"got {type(meta).__name__}")
        (count,) = struct.unpack("<Q", handle.read(8))
        payload_available = file_size - 10 - meta_len - 8
        if count * 8 > payload_available:
            raise ValueError(
                f"{path} is truncated: header declares {count} keys "
                f"({count * 8} bytes) but only {payload_available} "
                f"payload bytes remain")
        payload = handle.read(count * 8)
        if len(payload) != count * 8:
            raise ValueError(f"{path} is truncated: expected {count} keys")
        keys = np.frombuffer(payload, dtype="<i8").astype(np.int64)
    return Trace(name=meta.get("name", path.stem), keys=keys,
                 family=meta.get("family", "imported"),
                 group=meta.get("group", BLOCK))


# ----------------------------------------------------------------------
# oracleGeneral (libCacheSim interop)
# ----------------------------------------------------------------------
#
# The paper's own tooling (libCacheSim) stores traces in the
# "oracleGeneral" format: little-endian records of
#   uint32 timestamp, uint64 object id, uint32 size, int64 next_access
# This reader/writer lets users replay their real traces through this
# library, and export our synthetic corpus for cross-checking against
# libCacheSim itself.

_ORACLE_RECORD = struct.Struct("<IQIq")


def write_oracle_general(trace: Trace, path: PathLike,
                         size: int = 1) -> None:
    """Write *trace* in libCacheSim's oracleGeneral binary format.

    ``next_access`` is filled with the true next-access position (or
    -1), making the file directly usable by oracle-based algorithms.
    """
    path = Path(path)
    keys = trace.as_list()
    n = len(keys)
    next_access = [-1] * n
    last_seen: dict = {}
    for i in range(n - 1, -1, -1):
        key = keys[i]
        next_access[i] = last_seen.get(key, -1)
        last_seen[key] = i
    with path.open("wb") as handle:
        for i, key in enumerate(keys):
            handle.write(_ORACLE_RECORD.pack(i, key, size, next_access[i]))


def read_oracle_general(path: PathLike,
                        name: Optional[str] = None) -> Trace:
    """Read a libCacheSim oracleGeneral trace (keys only).

    Sizes and oracle fields are ignored -- the uniform-size study only
    needs the request order -- but the record layout is validated.
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) % _ORACLE_RECORD.size != 0:
        raise ValueError(
            f"{path} is not a valid oracleGeneral file: {len(data)} bytes "
            f"is not a multiple of the {_ORACLE_RECORD.size}-byte record")
    if not data:
        raise ValueError(f"{path} contains no requests")
    count = len(data) // _ORACLE_RECORD.size
    keys = np.empty(count, dtype=np.int64)
    for i, record in enumerate(_ORACLE_RECORD.iter_unpack(data)):
        keys[i] = record[1]
    return Trace(name=name or path.stem, keys=keys,
                 family="imported", group=BLOCK)


__all__ = [
    "write_csv",
    "read_csv",
    "write_binary",
    "read_binary",
    "write_oracle_general",
    "read_oracle_general",
]
