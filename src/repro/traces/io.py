"""Trace file I/O.

Two interchange formats:

* **CSV** -- one request per line: ``key[,time[,size]]`` with an
  optional header.  Human-readable, compatible with the common
  "oracleGeneral-ish" text exports of public trace repositories.
* **Packed binary** -- a tiny header (magic, version, count) followed
  by little-endian int64 keys.  ~10x smaller and ~50x faster to load
  than CSV for the million-request traces the full study uses.

Both round-trip through :class:`~repro.traces.trace.Trace` including
the family/group metadata (stored in the CSV header comment / binary
header).
"""

from __future__ import annotations

import csv
import json
import struct
from pathlib import Path
from typing import Union

import numpy as np

from repro.traces.trace import BLOCK, Trace

_MAGIC = b"RPTR"
_VERSION = 1

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------

def write_csv(trace: Trace, path: PathLike) -> None:
    """Write *trace* as CSV with a ``# meta:`` JSON header comment."""
    path = Path(path)
    meta = {"name": trace.name, "family": trace.family, "group": trace.group}
    with path.open("w", newline="") as handle:
        handle.write(f"# meta: {json.dumps(meta)}\n")
        writer = csv.writer(handle)
        writer.writerow(["key"])
        for key in trace.as_list():
            writer.writerow([key])


def read_csv(path: PathLike, name: str = None) -> Trace:
    """Read a trace from CSV.

    Accepts files with or without the ``# meta:`` comment and header
    row, and with 1-3 columns (key[,time[,size]]); only the key column
    is used, matching the paper's uniform-size setting.
    """
    path = Path(path)
    meta = {"name": name or path.stem, "family": "imported", "group": BLOCK}
    keys = []
    with path.open(newline="") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# meta:"):
                    meta.update(json.loads(line[len("# meta:"):]))
                continue
            first = line.split(",", 1)[0].strip()
            if not first.lstrip("-").isdigit():
                continue  # header row
            keys.append(int(first))
    if not keys:
        raise ValueError(f"no requests found in {path}")
    if name is not None:
        meta["name"] = name
    return Trace(name=meta["name"], keys=np.asarray(keys, dtype=np.int64),
                 family=meta["family"], group=meta["group"])


# ----------------------------------------------------------------------
# Packed binary
# ----------------------------------------------------------------------

def write_binary(trace: Trace, path: PathLike) -> None:
    """Write *trace* in the packed binary format."""
    path = Path(path)
    meta = json.dumps({
        "name": trace.name, "family": trace.family, "group": trace.group,
    }).encode("utf-8")
    with path.open("wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<HI", _VERSION, len(meta)))
        handle.write(meta)
        handle.write(struct.pack("<Q", trace.num_requests))
        handle.write(trace.keys.astype("<i8").tobytes())


def read_binary(path: PathLike) -> Trace:
    """Read a trace written by :func:`write_binary`."""
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(4)
        if magic != _MAGIC:
            raise ValueError(f"{path} is not a packed trace file "
                             f"(bad magic {magic!r})")
        version, meta_len = struct.unpack("<HI", handle.read(6))
        if version != _VERSION:
            raise ValueError(f"unsupported trace version {version}")
        meta = json.loads(handle.read(meta_len).decode("utf-8"))
        (count,) = struct.unpack("<Q", handle.read(8))
        payload = handle.read(count * 8)
        if len(payload) != count * 8:
            raise ValueError(f"{path} is truncated: expected {count} keys")
        keys = np.frombuffer(payload, dtype="<i8").astype(np.int64)
    return Trace(name=meta["name"], keys=keys,
                 family=meta["family"], group=meta["group"])


# ----------------------------------------------------------------------
# oracleGeneral (libCacheSim interop)
# ----------------------------------------------------------------------
#
# The paper's own tooling (libCacheSim) stores traces in the
# "oracleGeneral" format: little-endian records of
#   uint32 timestamp, uint64 object id, uint32 size, int64 next_access
# This reader/writer lets users replay their real traces through this
# library, and export our synthetic corpus for cross-checking against
# libCacheSim itself.

_ORACLE_RECORD = struct.Struct("<IQIq")


def write_oracle_general(trace: Trace, path: PathLike,
                         size: int = 1) -> None:
    """Write *trace* in libCacheSim's oracleGeneral binary format.

    ``next_access`` is filled with the true next-access position (or
    -1), making the file directly usable by oracle-based algorithms.
    """
    path = Path(path)
    keys = trace.as_list()
    n = len(keys)
    next_access = [-1] * n
    last_seen: dict = {}
    for i in range(n - 1, -1, -1):
        key = keys[i]
        next_access[i] = last_seen.get(key, -1)
        last_seen[key] = i
    with path.open("wb") as handle:
        for i, key in enumerate(keys):
            handle.write(_ORACLE_RECORD.pack(i, key, size, next_access[i]))


def read_oracle_general(path: PathLike, name: str = None) -> Trace:
    """Read a libCacheSim oracleGeneral trace (keys only).

    Sizes and oracle fields are ignored -- the uniform-size study only
    needs the request order -- but the record layout is validated.
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) % _ORACLE_RECORD.size != 0:
        raise ValueError(
            f"{path} is not a valid oracleGeneral file: {len(data)} bytes "
            f"is not a multiple of the {_ORACLE_RECORD.size}-byte record")
    if not data:
        raise ValueError(f"{path} contains no requests")
    count = len(data) // _ORACLE_RECORD.size
    keys = np.empty(count, dtype=np.int64)
    for i, record in enumerate(_ORACLE_RECORD.iter_unpack(data)):
        keys[i] = record[1]
    return Trace(name=name or path.stem, keys=keys,
                 family="imported", group=BLOCK)


__all__ = [
    "write_csv",
    "read_csv",
    "write_binary",
    "read_binary",
    "write_oracle_general",
    "read_oracle_general",
]
