"""The :class:`Trace` container: a named, grouped request sequence.

A trace is the unit of the paper's study (it aggregates over 5307 of
them).  Each trace belongs to a *family* (one of the Table 1 dataset
rows) and a *group* -- ``block`` or ``web`` -- the two workload classes
the paper's Fig. 2 and Fig. 5 split on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

BLOCK = "block"
WEB = "web"
GROUPS = (BLOCK, WEB)


@dataclass
class Trace:
    """A request sequence plus identifying metadata.

    ``keys`` is stored as a numpy int64 array for compactness; use
    :meth:`as_list` to get the plain-int list the simulator hot loop
    wants (hashing Python ints is considerably faster than hashing
    numpy scalars).
    """

    name: str
    keys: np.ndarray
    family: str = "synthetic"
    group: str = BLOCK
    params: Dict[str, object] = field(default_factory=dict)
    _uniques: int = field(default=-1, repr=False, compare=False)
    _as_list: List[int] = field(default=None, repr=False, compare=False)
    #: cached repro.sim.fast.intern.InternedTrace (set on first intern)
    _interned: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.group not in GROUPS:
            raise ValueError(
                f"group must be one of {GROUPS}, got {self.group!r}")
        self.keys = np.asarray(self.keys, dtype=np.int64)
        if self.keys.ndim != 1:
            raise ValueError("keys must be a 1-D sequence")
        if len(self.keys) == 0:
            raise ValueError("trace must contain at least one request")

    # ------------------------------------------------------------------
    @property
    def num_requests(self) -> int:
        """Number of requests in the trace."""
        return int(len(self.keys))

    @property
    def num_unique(self) -> int:
        """Number of distinct objects (computed once, then cached)."""
        if self._uniques < 0:
            self._uniques = int(np.unique(self.keys).size)
        return self._uniques

    def as_list(self) -> List[int]:
        """The request sequence as a list of Python ints (cached)."""
        if self._as_list is None:
            self._as_list = self.keys.tolist()
        return self._as_list

    def cache_size(self, fraction: float, minimum: int = 10) -> int:
        """Cache capacity as a fraction of the trace's unique objects.

        The paper evaluates at 0.1 % ("small") and 10 % ("large") of
        the number of unique objects; ``minimum`` keeps tiny synthetic
        traces from degenerating to capacity 1.
        """
        if fraction <= 0:
            raise ValueError(f"fraction must be > 0, got {fraction}")
        return max(minimum, round(self.num_unique * fraction))

    def __len__(self) -> int:
        return self.num_requests


def head(trace: Trace, num_requests: int) -> Trace:
    """The first *num_requests* requests of *trace* as a new Trace."""
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    return Trace(
        name=f"{trace.name}-head{num_requests}",
        keys=trace.keys[:num_requests].copy(),
        family=trace.family,
        group=trace.group,
        params=dict(trace.params),
    )


def sample_requests(trace: Trace, rate: float, seed: int = 0) -> Trace:
    """Spatially sample *trace*: keep every request whose key falls in
    a pseudo-random *rate*-fraction of the key space.

    Spatial (per-key) sampling preserves per-object reuse patterns --
    the property SHARDS-style analyses rely on -- unlike temporal
    sampling, which destroys reuse distances.
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    import zlib
    threshold = int(rate * 0xFFFFFFFF)
    mask = np.fromiter(
        (zlib.crc32(f"{seed}:{key}".encode()) <= threshold
         for key in trace.as_list()),
        dtype=bool, count=trace.num_requests)
    keys = trace.keys[mask]
    if len(keys) == 0:
        raise ValueError(
            f"sampling rate {rate} left no requests in {trace.name}")
    return Trace(
        name=f"{trace.name}-sample{rate:g}",
        keys=keys,
        family=trace.family,
        group=trace.group,
        params=dict(trace.params),
    )


def remap_keys(trace: Trace) -> Trace:
    """Renumber keys densely to ``0..U-1`` in first-appearance order.

    Useful after sampling/slicing, and before exporting to formats
    whose consumers expect compact id spaces.
    """
    mapping: Dict[int, int] = {}
    out = np.empty(trace.num_requests, dtype=np.int64)
    for i, key in enumerate(trace.as_list()):
        new = mapping.get(key)
        if new is None:
            new = len(mapping)
            mapping[key] = new
        out[i] = new
    return Trace(
        name=f"{trace.name}-remap",
        keys=out,
        family=trace.family,
        group=trace.group,
        params=dict(trace.params),
    )


def from_keys(
    keys: Sequence[int],
    name: str = "inline",
    family: str = "synthetic",
    group: str = BLOCK,
) -> Trace:
    """Build a :class:`Trace` from any integer sequence."""
    return Trace(name=name, keys=np.asarray(list(keys), dtype=np.int64),
                 family=family, group=group)


__all__ = ["Trace", "from_keys", "head", "sample_requests", "remap_keys",
           "BLOCK", "WEB", "GROUPS"]
