"""Workloads: synthetic generators, the Table 1 corpus, stats and I/O."""

from repro.traces.corpus import FAMILIES, DatasetFamily, build_corpus, build_trace
from repro.traces.io import (
    read_binary,
    read_csv,
    read_oracle_general,
    write_binary,
    write_csv,
    write_oracle_general,
)
from repro.traces.ttl import apply_ttl, effective_objects
from repro.traces.stats import (
    FamilyStats,
    TraceStats,
    aggregate_by_family,
    compute_stats,
    frequency_histogram,
)
from repro.traces.trace import (
    BLOCK,
    WEB,
    Trace,
    from_keys,
    head,
    remap_keys,
    sample_requests,
)
from repro.traces.zipf import ZipfSampler, zipf_ranks

__all__ = [
    "FAMILIES",
    "DatasetFamily",
    "build_corpus",
    "build_trace",
    "read_binary",
    "read_csv",
    "read_oracle_general",
    "write_oracle_general",
    "apply_ttl",
    "effective_objects",
    "head",
    "remap_keys",
    "sample_requests",
    "write_binary",
    "write_csv",
    "FamilyStats",
    "TraceStats",
    "aggregate_by_family",
    "compute_stats",
    "frequency_histogram",
    "BLOCK",
    "WEB",
    "Trace",
    "from_keys",
    "ZipfSampler",
    "zipf_ranks",
]
