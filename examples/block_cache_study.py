#!/usr/bin/env python3
"""Block-cache study: LP-FIFO vs LRU on the block trace families.

Reproduces the Fig. 2 block panels on a slice of the corpus: for each
block dataset family, the fraction of traces on which FIFO-Reinsertion
and 2-bit CLOCK beat LRU at the small (0.1 %) and large (10 %) cache
sizes.

Run:  python examples/block_cache_study.py [--traces N]
"""

import argparse

from repro.analysis.comparison import win_fractions
from repro.analysis.tables import render_percent, render_table
from repro.sim.runner import SMALL_FRACTION, run_matrix
from repro.traces.corpus import build_corpus

BLOCK_FAMILIES = ["msr", "fiu", "cloudphysics", "tencent_cbs", "alibaba"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=2,
                        help="traces per family (default 2)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="trace length scale (default 0.5)")
    args = parser.parse_args()

    print(f"Building {len(BLOCK_FAMILIES)} block families x "
          f"{args.traces} traces ...")
    traces = build_corpus(scale=args.scale, traces_per_family=args.traces,
                          families=BLOCK_FAMILIES)
    print(f"Simulating {len(traces)} traces x 3 policies x 2 sizes ...")
    records = run_matrix(["LRU", "FIFO-Reinsertion", "2-bit-CLOCK"],
                         traces, min_capacity=50)

    for challenger in ("FIFO-Reinsertion", "2-bit-CLOCK"):
        rows = []
        for frac in win_fractions(records, challenger, "LRU", by="family"):
            rows.append([
                frac.slice_name,
                "small" if frac.size_fraction == SMALL_FRACTION else "large",
                frac.wins, frac.losses, frac.ties,
                render_percent(frac.win_fraction),
            ])
        print()
        print(render_table(
            ["dataset", "size", "wins", "losses", "ties",
             f"% favouring {challenger}"],
            rows,
            title=f"{challenger} vs LRU on block workloads"))

    print()
    print("Paper's finding: contrary to the 'CLOCK approximates LRU'")
    print("folklore, lazy promotion wins on most block traces.")


if __name__ == "__main__":
    main()
