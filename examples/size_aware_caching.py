#!/usr/bin/env python3
"""Size-aware caching: the paper's §5 future work, runnable.

Objects in web caches vary by orders of magnitude in size, and the
right metric depends on what you pay for: request misses (origin
RPS) or byte misses (origin bandwidth).  This example attaches
heavy-tailed log-normal sizes to a web-like trace and compares the
size-aware policies on both metrics.

Run:  python examples/size_aware_caching.py
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.sized import (
    GDSF,
    SizedClock,
    SizedFIFO,
    SizedLRU,
    SizedQDLPFIFO,
    attach_sizes,
    simulate_sized,
    unique_bytes,
)
from repro.traces.synthetic import one_hit_wonder_trace


def main() -> None:
    rng = np.random.default_rng(11)
    keys = one_hit_wonder_trace(
        core_objects=5000, num_requests=100_000, alpha=1.0,
        ohw_fraction=0.3, rng=rng)
    sized = attach_sizes(keys, "lognormal", seed=7)
    footprint = unique_bytes(sized)
    capacity = footprint // 10
    print(f"footprint: {footprint / 1e6:.1f} MB, "
          f"cache: {capacity / 1e6:.1f} MB (10%)\n")

    rows = []
    for factory in (SizedFIFO, SizedLRU,
                    lambda b: SizedClock(b, bits=2),
                    SizedQDLPFIFO, GDSF):
        policy = factory(capacity)
        result = simulate_sized(policy, sized)
        rows.append([policy.name, result.miss_ratio,
                     result.byte_miss_ratio])

    print(render_table(
        ["policy", "object miss ratio", "byte miss ratio"],
        rows, title="Size-aware eviction on a one-hit-wonder-heavy "
                    "web workload"))
    print()
    print("GDSF hoards small objects, winning the object miss ratio;")
    print("size-aware QD-LP-FIFO filters the one-hit tail regardless of")
    print("size, winning the byte miss ratio -- exactly the trade-off")
    print("the paper's future-work paragraph anticipates.")


if __name__ == "__main__":
    main()
