#!/usr/bin/env python3
"""Replay your own trace through the full policy comparison.

Point this script at a CSV (``key[,time[,size]]``) or a libCacheSim
oracleGeneral binary trace, and it runs the paper's headline
comparison on *your* workload: miss ratios for FIFO, LRU, the LP-FIFO
family, QD-LP-FIFO and the state of the art at the paper's two cache
sizes, plus the exact LRU miss-ratio curve.

With no argument it demonstrates on an exported synthetic trace.

Run:  python examples/replay_your_trace.py [path/to/trace.csv]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis.mrc import lru_mrc
from repro.analysis.tables import render_table
from repro.policies.registry import REGISTRY, make
from repro.sim.simulator import simulate
from repro.traces.io import read_csv, read_oracle_general, write_csv

POLICIES = ["FIFO", "LRU", "FIFO-Reinsertion", "2-bit-CLOCK",
            "QD-LP-FIFO", "ARC", "LIRS", "LeCaR", "S3-FIFO", "SIEVE"]


def load(path: Path):
    if path.suffix == ".csv":
        return read_csv(path)
    return read_oracle_general(path)


def demo_trace() -> Path:
    """Export a synthetic trace so the demo is self-contained."""
    from repro.traces.corpus import FAMILY_BY_NAME, build_trace
    trace = build_trace(FAMILY_BY_NAME["cdn"], 0, 0.5, 42)
    path = Path(tempfile.gettempdir()) / "repro-demo-trace.csv"
    write_csv(trace, path)
    print(f"(no trace given: exported a demo trace to {path})\n")
    return path


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else demo_trace()
    trace = load(path)
    print(f"trace: {trace.name} -- {trace.num_requests} requests, "
          f"{trace.num_unique} unique objects\n")

    rows = []
    for name in POLICIES:
        row = [name]
        for fraction, label in ((0.001, "small"), (0.1, "large")):
            capacity = max(trace.cache_size(fraction),
                           REGISTRY[name].min_capacity)
            row.append(simulate(make(name, capacity), trace).miss_ratio)
        rows.append(row)
    print(render_table(
        ["policy", "miss ratio @0.1%", "miss ratio @10%"],
        rows, title="Your trace, the paper's comparison"))

    sizes = sorted({max(10, round(trace.num_unique * f))
                    for f in (0.001, 0.01, 0.1, 0.5)})
    curve = lru_mrc(trace, sizes=sizes)
    print()
    print(render_table(
        ["cache size", "LRU miss ratio"], curve.as_rows(),
        title="Exact LRU miss-ratio curve (one reuse-distance pass)"))


if __name__ == "__main__":
    main()
