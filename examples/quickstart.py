#!/usr/bin/env python3
"""Quickstart: build caches, replay a workload, compare miss ratios.

Demonstrates the three core ideas of the paper on one synthetic
workload:

1. FIFO is fast but inefficient.
2. Lazy Promotion (FIFO-Reinsertion / 2-bit CLOCK) beats LRU.
3. Quick Demotion (QD-LP-FIFO) closes in on the offline optimum.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Belady,
    FIFO,
    FIFOReinsertion,
    LRU,
    QDLPFIFO,
    simulate,
    two_bit_clock,
)
from repro.analysis.tables import render_percent, render_table
from repro.traces.synthetic import one_hit_wonder_trace


def main() -> None:
    # A web-flavoured workload: Zipf core + 30% one-hit wonders.
    rng = np.random.default_rng(42)
    keys = one_hit_wonder_trace(
        core_objects=5000, num_requests=100_000, alpha=1.0,
        ohw_fraction=0.3, rng=rng)
    capacity = 1000

    policies = [
        FIFO(capacity),
        LRU(capacity),
        FIFOReinsertion(capacity),
        two_bit_clock(capacity),
        QDLPFIFO(capacity),
        Belady(capacity),
    ]

    rows = []
    fifo_mr = None
    for policy in policies:
        result = simulate(policy, keys)
        if fifo_mr is None:
            fifo_mr = result.miss_ratio
        reduction = (fifo_mr - result.miss_ratio) / fifo_mr
        rows.append([policy.name, result.miss_ratio,
                     render_percent(reduction)])

    print(render_table(
        ["policy", "miss ratio", "reduction vs FIFO"],
        rows,
        title=f"100k requests, cache = {capacity} objects"))
    print()
    print("Note the ordering: FIFO < LRU < LP-FIFO < QD-LP-FIFO < Belady")
    print("-- lazy promotion beats eager promotion, and quick demotion")
    print("closes most of the remaining gap to the offline optimum.")


if __name__ == "__main__":
    main()
