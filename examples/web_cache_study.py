#!/usr/bin/env python3
"""Web-cache study: Quick Demotion on the web trace families.

Reproduces a slice of Fig. 5: for the web families (CDN, photo, wiki,
Twitter, social network), compares each state-of-the-art algorithm
with its QD-enhanced variant and QD-LP-FIFO at the large cache size --
the regime where the paper reports the biggest QD gains.

Run:  python examples/web_cache_study.py [--traces N]
"""

import argparse

import numpy as np

from repro.analysis.metrics import pairwise_reduction, reductions_from_baseline
from repro.analysis.tables import render_percent, render_table
from repro.policies.registry import SOTA_NAMES
from repro.sim.runner import LARGE_FRACTION, run_matrix
from repro.traces.corpus import build_corpus

WEB_FAMILIES = ["cdn", "tencent_photo", "wiki", "twitter", "socialnet"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=2,
                        help="traces per family (default 2)")
    args = parser.parse_args()

    traces = build_corpus(scale=1.0, traces_per_family=args.traces,
                          families=WEB_FAMILIES)
    policies = (["FIFO"] + SOTA_NAMES
                + [f"QD-{name}" for name in SOTA_NAMES] + ["QD-LP-FIFO"])
    print(f"Simulating {len(traces)} web traces x {len(policies)} "
          "policies at the large (10%) cache size ...")
    records = run_matrix(policies, traces,
                         size_fractions=(LARGE_FRACTION,), min_capacity=50)

    reductions = reductions_from_baseline(records, baseline="FIFO")
    rows = []
    for policy in policies[1:]:
        values = list(reductions[policy].values())
        rows.append([policy, render_percent(float(np.mean(values))),
                     render_percent(float(np.max(values)))])
    print()
    print(render_table(
        ["policy", "mean reduction vs FIFO", "max"],
        rows, title="Web workloads, large cache size"))

    print()
    rows = []
    for name in SOTA_NAMES:
        gains = pairwise_reduction(records, f"QD-{name}", name)
        rows.append([f"QD-{name} vs {name}",
                     render_percent(float(np.mean(gains))),
                     render_percent(float(np.max(gains)))])
    print(render_table(
        ["comparison", "mean gain", "max gain"],
        rows, title="Quick Demotion's improvement over each algorithm"))


if __name__ == "__main__":
    main()
