#!/usr/bin/env python3
"""Quickstart: a fault-tolerant cache service in front of a flaky backend.

Wraps QD-LP-FIFO (the paper's lazy-promotion + quick-demotion design)
in a :class:`repro.service.CacheService` and drives it through a total
backend outage on a virtual clock — no real sleeps, fully
deterministic.  Shows request coalescing, retry with backoff, the
circuit breaker opening and recovering, and serve-stale degradation
keeping availability up while the backend is down.

Run:  python examples/resilient_service.py
"""

import numpy as np

from repro.exec import RetryPolicy, VirtualClock
from repro.policies.registry import make
from repro.service import (
    BackendFaultPlan,
    BreakerConfig,
    CacheService,
    FaultInjectedBackend,
    InMemoryBackend,
    ServiceConfig,
    run_load,
)
from repro.traces.synthetic import zipf_trace

NUM_OBJECTS = 500
NUM_REQUESTS = 5000
TICK = 0.01                       # virtual seconds between requests
DURATION = NUM_REQUESTS * TICK    # 50 virtual seconds


def main() -> None:
    clock = VirtualClock()

    # A backend that goes completely dark for the middle 30% of the run
    # and charges 2ms per fetch the rest of the time.
    plan = (BackendFaultPlan()
            .base_latency(0.002)
            .outage(0.4 * DURATION, 0.7 * DURATION))
    backend = FaultInjectedBackend(InMemoryBackend(), plan, clock)

    service = CacheService(
        make("QD-LP-FIFO", capacity=NUM_OBJECTS // 10),
        backend,
        ServiceConfig(
            ttl=0.10 * DURATION,          # entries go stale after 5s
            stale_ttl=0.35 * DURATION,    # ... but stay servable 17.5s more
            negative_ttl=0.01 * DURATION,
            retry=RetryPolicy(max_attempts=2, base_delay=0.005,
                              timeout=None),
            breaker=BreakerConfig(failure_threshold=5, reset_timeout=2.0),
        ),
        clock=clock,
    )

    rng = np.random.default_rng(7)
    keys = zipf_trace(NUM_OBJECTS, NUM_REQUESTS, 1.0, rng).tolist()

    print(f"Replaying {NUM_REQUESTS} Zipf requests; backend dark "
          f"{0.4 * DURATION:.0f}s..{0.7 * DURATION:.0f}s of "
          f"{DURATION:.0f}s (virtual)...\n")
    report = run_load(service, keys, threads=1, tick=TICK)
    report.check_accounting()
    print(report.render())

    print("\nBreaker transitions (virtual time):")
    for when, src, dst in report.breaker_transitions:
        print(f"  t={when:6.2f}s  {src:>9s} -> {dst}")

    stale = report.outcomes["stale"]
    print(f"\nDuring the outage the service answered {stale} requests "
          f"from stale cache entries instead of erroring;")
    print(f"availability stayed at {report.availability:.1%} despite the "
          f"backend being down for 30% of the run.")


if __name__ == "__main__":
    main()
