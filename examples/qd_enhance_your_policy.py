#!/usr/bin/env python3
"""LEGO caching: add Quick Demotion to *your own* eviction policy.

The paper envisions eviction algorithms assembled like LEGO bricks:
take any base policy, bolt on a probationary FIFO + ghost (Quick
Demotion), and optionally use lazy promotion inside.  Because
``QDCache`` wraps anything implementing ``EvictionPolicy``, that
composition is one line.

This example defines a deliberately naive custom policy (most-recently
-used eviction -- usually terrible), wraps it with QD, and sweeps the
probationary size to show the 10 % sweet spot.

Run:  python examples/qd_enhance_your_policy.py
"""

from collections import OrderedDict

import numpy as np

from repro import EvictionPolicy, QDCache, simulate, wrap_with_qd
from repro.analysis.tables import render_table
from repro.policies.lru import LRU
from repro.traces.synthetic import blend, one_hit_wonder_trace, scan_trace


class MRU(EvictionPolicy):
    """Evict the most recently used object (a scan-friendly policy)."""

    name = "MRU"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._queue: "OrderedDict[object, None]" = OrderedDict()

    def request(self, key) -> bool:
        if key in self._queue:
            self._queue.move_to_end(key)
            self._record(True)
            return True
        self._record(False)
        if len(self._queue) >= self.capacity:
            victim, _ = self._queue.popitem(last=True)  # MRU end!
            self._notify_evict(victim)
        self._queue[key] = None
        self._notify_admit(key)
        return False

    def __contains__(self, key) -> bool:
        return key in self._queue

    def __len__(self) -> int:
        return len(self._queue)


def main() -> None:
    rng = np.random.default_rng(7)
    core = one_hit_wonder_trace(4000, 60000, 1.0, 0.25, rng)
    scan = scan_trace(20000, base=10_000_000)
    keys = blend([core, scan], [0.75, 0.25], rng)
    capacity = 800

    rows = []
    for factory in (MRU, LRU, wrap_with_qd(MRU), wrap_with_qd(LRU)):
        policy = factory(capacity)
        rows.append([policy.name, simulate(policy, keys).miss_ratio])
    print(render_table(["policy", "miss ratio"], rows,
                       title="QD rescues even a bad base policy"))

    print()
    rows = []
    for fraction in (0.025, 0.05, 0.1, 0.2, 0.5):
        policy = QDCache(capacity, LRU, probation_fraction=fraction)
        rows.append([f"{fraction:.1%}",
                     simulate(policy, keys).miss_ratio])
    print(render_table(
        ["probationary share", "miss ratio"], rows,
        title="Probationary-queue size sweep (QD-LRU)"))
    print()
    print("The paper's tiny fixed 10% probationary queue is near the")
    print("sweet spot; 2Q-style 25-50% admission queues demote slower.")


if __name__ == "__main__":
    main()
