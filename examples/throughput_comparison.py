#!/usr/bin/env python3
"""Throughput comparison: why systems people reach for FIFO (paper §2).

LRU pays six pointer updates under a lock on *every cache hit*;
FIFO-family algorithms touch at most one flag.  This example measures
simulated request throughput per policy on a hot Zipf workload, where
the hit path dominates.  Absolute numbers are Python-simulator
numbers; the *relative* ordering is the paper's point.

Run:  python examples/throughput_comparison.py
"""

from repro.experiments import throughput


def main() -> None:
    result = throughput.run(num_objects=5000, num_requests=100_000)
    print(result.render())
    relative = result.relative_to("LRU")
    fastest_fifo = max(
        ("FIFO", "FIFO-Reinsertion", "2-bit-CLOCK", "SIEVE"),
        key=lambda name: relative.get(name, 0.0))
    print()
    print(f"Fastest FIFO-family policy: {fastest_fifo} at "
          f"{relative[fastest_fifo]:.2f}x LRU's throughput.")
    print("In real systems the gap is larger still: FIFO needs no lock")
    print("on the hit path, so it scales with thread count while LRU's")
    print("list head becomes a contention point.")


if __name__ == "__main__":
    main()
