#!/usr/bin/env python3
"""Miss-ratio curves: where each algorithm wins across cache sizes.

Builds a web-like trace and plots (as an ASCII table) the miss-ratio
curve of LRU (computed exactly in one pass via reuse distances), its
SHARDS-sampled approximation, and the simulated curves of 2-bit CLOCK
and QD-LP-FIFO.  The right-hand columns show the paper's §4 "(not
shown)" effect: QD's edge shrinks as the cache approaches the working
set.

Run:  python examples/mrc_study.py
"""

import numpy as np

from repro.analysis.mrc import lru_mrc, shards_mrc, simulated_mrc
from repro.analysis.tables import render_table
from repro.core.clock import two_bit_clock
from repro.core.qdlpfifo import QDLPFIFO
from repro.traces.synthetic import one_hit_wonder_trace


def main() -> None:
    rng = np.random.default_rng(21)
    keys = one_hit_wonder_trace(
        core_objects=4000, num_requests=80_000, alpha=1.0,
        ohw_fraction=0.3, rng=rng).tolist()
    uniques = len(set(keys))
    sizes = sorted({max(10, round(uniques * f))
                    for f in (0.001, 0.01, 0.05, 0.1, 0.3, 0.5, 0.8)})

    exact = lru_mrc(keys, sizes=sizes)
    sampled = shards_mrc(keys, sizes=sizes, sample_rate=0.1)
    clock = simulated_mrc(two_bit_clock, keys, sizes=sizes)
    qdlp = simulated_mrc(QDLPFIFO, keys, sizes=sizes)

    rows = []
    for i, size in enumerate(sizes):
        rows.append([
            size,
            f"{100 * size / uniques:.1f}%",
            exact.miss_ratios[i],
            sampled.miss_ratios[i],
            clock.miss_ratios[i],
            qdlp.miss_ratios[i],
        ])
    print(render_table(
        ["cache size", "% of objects", "LRU (exact)", "LRU (SHARDS 10%)",
         "2-bit CLOCK", "QD-LP-FIFO"],
        rows,
        title=f"Miss-ratio curves ({uniques} objects, 80k requests)"))
    print()
    print("The exact LRU curve comes from a single reuse-distance pass;")
    print("SHARDS reproduces it from a 10% sample. QD-LP-FIFO leads at")
    print("small-to-mid sizes and converges (or concedes) near the")
    print("working-set size -- the paper's size-dependence, end to end.")


if __name__ == "__main__":
    main()
